//! The asynchronous parallel factorization, executed in virtual time.
//!
//! Every processor runs the MUMPS-style loop: pick work (received slave
//! tasks first, then a ready task from the local pool via the configured
//! strategy), allocate the front, assemble the stacked contribution
//! blocks, compute for `flops / speed` ticks, then ship the contribution
//! block to the parent's processor and the factors to the factor area.
//! Masters of type-2 nodes choose their slaves dynamically at activation
//! time from their *stale views* of the other processors; all the
//! information mechanisms of the paper (memory increments, subtree peaks,
//! ready-master predictions) travel as messages with real latency.

use crate::config::{SlaveSelection, SolverConfig, TaskSelection};
use crate::error::{ProcDiag, RunDiagnostics, SimError};
use crate::mapping::{NodeKind, StaticMapping};
use crate::pool::TaskPool;
use crate::slavesel::{select_memory, select_workload, SelectionInput, SlaveAssignment};
use crate::views::Views;
use mf_sim::recorder::{FrontClass, MemArea, SlavePick, StatusKind, TaskRole};
use mf_sim::{
    Event, EventPayload, FaultInjector, MsgClass, NetworkModel, ProcMemory, Recording, RunMetrics,
    SchedEvent, Sim, Time, Trace,
};
use mf_symbolic::AssemblyTree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Inter-processor messages.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Msg {
    /// A contribution-block piece of `child` was produced and sits on the
    /// stack of processor `holder` until the parent activates (control
    /// message to the parent's master; the data itself stays put).
    PieceDone { child: usize, holder: usize, entries: u64 },
    /// `child`'s elimination finished; `pieces` CB pieces were produced
    /// in total (0 when the CB is empty).
    Complete { child: usize, pieces: usize },
    /// The parent activated: the addressed processor ships its stacked CB
    /// piece of `child` to the parent's workers and frees it.
    FetchCb { child: usize, entries: u64 },
    /// A slave task of a type-2 node.
    SlaveTask {
        node: usize,
        entries: u64,
        cb_share: u64,
        factor_share: u64,
        flops_share: u64,
    },
    /// The 2-D root scatters equal shares to every processor.
    Type3Share { node: usize, entries: u64, flops_share: u64 },
    /// Memory increment of the sender's active memory (Section 4).
    MemDelta { delta: i64 },
    /// Workload increment of the sender (Section 3).
    LoadDelta { delta: i64 },
    /// The sender entered (peak > 0) or left (0) a subtree (Section 5.1).
    SubtreePeak { peak: u64 },
    /// Cost of the largest master task about to activate on the sender
    /// (Section 5.1; absolute value, 0 when none).
    Predicted { cost: u64 },
    /// All children of `node` have started: its master should soon expect
    /// it to become ready (Section 5.1 prediction trigger).
    ChildStarted { node: usize },
    /// A master announces that it just assigned a slave block of
    /// `entries` to processor `proc` — the mechanism that makes masters'
    /// choices "known as quickly as possible by the others" (Section 4),
    /// without which concurrent masters pile work on the same processor.
    Assigned { proc: usize, entries: u64 },
}

impl Msg {
    /// Status classification for the flight recorder and the traffic
    /// metrics; `None` for control messages.
    fn status_kind(&self) -> Option<(StatusKind, i64)> {
        match *self {
            Msg::MemDelta { delta } => Some((StatusKind::MemDelta, delta)),
            Msg::LoadDelta { delta } => Some((StatusKind::LoadDelta, delta)),
            Msg::SubtreePeak { peak } => Some((StatusKind::SubtreePeak, peak as i64)),
            Msg::Predicted { cost } => Some((StatusKind::Predicted, cost as i64)),
            Msg::Assigned { entries, .. } => Some((StatusKind::Assigned, entries as i64)),
            _ => None,
        }
    }

    /// Fault-injection delivery class: view refreshes are idempotent
    /// [`MsgClass::Status`] traffic a perturbed network may drop (the run
    /// stays correct, the views get staler); everything that carries an
    /// obligation — task payloads, completions, CB bookkeeping, the
    /// prediction *trigger* `ChildStarted` (its counter must reach the
    /// child count exactly once per child) — is [`MsgClass::Control`].
    fn class(&self) -> MsgClass {
        match self {
            Msg::MemDelta { .. }
            | Msg::LoadDelta { .. }
            | Msg::SubtreePeak { .. }
            | Msg::Predicted { .. }
            | Msg::Assigned { .. } => MsgClass::Status,
            _ => MsgClass::Control,
        }
    }
}

/// A fatal condition detected deep inside the event handlers; the main
/// loop converts it into a [`SimError`] with full diagnostics after the
/// current event unwinds.
#[derive(Debug, Clone)]
enum Violation {
    Accounting { proc: usize, area: &'static str },
    Protocol { detail: String },
}

/// Work units whose completion is signalled by a timer.
#[derive(Debug, Clone)]
enum Work {
    /// Full-front elimination (type 1, subtree nodes, or a type-2 node
    /// that found no slaves).
    Elim { node: usize, flops: u64 },
    /// Master part of a type-2 node (`pieces` slaves were enrolled).
    MasterPart { node: usize, pieces: usize, flops: u64 },
    /// A slave block of a type-2 node.
    Slave {
        node: usize,
        entries: u64,
        cb_share: u64,
        factor_share: u64,
        flops: u64,
    },
    /// This processor's share of the 2-D root (`is_master` on the
    /// processor that owns the root and counts it done).
    RootShare { node: usize, entries: u64, flops: u64, is_master: bool },
}

struct Proc {
    mem: ProcMemory,
    /// Out-of-core mode: virtual time until which this processor's disk
    /// is busy writing factors.
    disk_busy_until: Time,
    views: Views,
    pool: TaskPool,
    busy: bool,
    slave_queue: VecDeque<usize>, // indices into World::works
    current_subtree: Option<usize>,
    /// Active memory when the current subtree started (for Algorithm 2's
    /// "current memory including peak of subtree").
    subtree_base: u64,
    /// Instant this processor entered its current stalled interval (idle
    /// with every ready task deferred by the capacity verdict); `None`
    /// when not stalled. Feeds `ProcMetrics::stalled_ticks`.
    stalled_since: Option<Time>,
    /// Upper tasks owned here whose children have all started (node ->
    /// predicted activation cost), feeding the Predicted broadcasts.
    soon: std::collections::BTreeMap<usize, u64>,
}

/// Outcome of a simulated parallel factorization.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-processor peak of the active memory (stack + fronts), the
    /// quantity behind every table of the paper.
    pub peaks: Vec<u64>,
    /// `max(peaks)` — the "maximum stack memory peak" of Tables 2-5.
    pub max_peak: u64,
    /// Mean of the per-processor peaks (memory balance indicator).
    pub avg_peak: f64,
    /// Virtual completion time (Table 6's factorization time).
    pub makespan: Time,
    /// Messages exchanged.
    pub messages: u64,
    /// Per-processor active-memory traces when
    /// [`SolverConfig::record_traces`] was set.
    pub traces: Option<Vec<Trace>>,
    /// Per-processor peak of active memory *plus factors* — what an
    /// in-core execution must provision; the gap to `peaks` is exactly
    /// the out-of-core argument of the paper's conclusion (factors can be
    /// streamed to disk, the stack cannot).
    pub total_peaks: Vec<u64>,
    /// Per-processor factor entries stored at the end.
    pub factor_entries: Vec<u64>,
    /// Fronts fully processed (must equal `total_nodes`).
    pub nodes_done: usize,
    /// Fronts in the tree.
    pub total_nodes: usize,
    /// Messages the fault injector dropped (0 without a fault model).
    pub dropped_messages: u64,
    /// Degradation events under a hard capacity: serialize-on-master
    /// fallbacks plus force-activated deferred tasks (0 without a cap).
    pub forced_activations: u64,
    /// Per-processor active memory at the end: all zeros in a correct
    /// run (every CB pushed was popped, every front freed — the entry
    /// conservation invariant the robustness proptests assert).
    pub final_active: Vec<u64>,
    /// Per-processor saturating-accounting underflow counts (0 in a
    /// correct run; nonzero only on runs that also returned an error).
    pub underflows: Vec<u64>,
    /// Always-on run metrics: traffic by message class, staleness and
    /// pool-depth histograms, per-processor busy/stalled/decision
    /// counters.
    pub metrics: RunMetrics,
    /// The flight recording when [`SolverConfig::record_events`] was set.
    pub recording: Option<Recording>,
}

struct World<'a> {
    tree: &'a AssemblyTree,
    map: &'a StaticMapping,
    cfg: &'a SolverConfig,
    sim: Sim<Msg>,
    net: NetworkModel,
    procs: Vec<Proc>,
    works: Vec<(usize, Work)>, // (proc, work)
    // Readiness bookkeeping, all indexed by node id and touched only by
    // the owner of the relevant (parent) node.
    pieces_expected: Vec<Option<usize>>,
    pieces_got: Vec<usize>,
    child_complete: Vec<bool>,
    done_children: Vec<usize>,
    /// CB pieces stacked for each *parent* node: (holder processor,
    /// entries, producing child), recorded at the parent's owner,
    /// released at activation.
    cb_pieces: Vec<Vec<(usize, u64, usize)>>,
    started_children: Vec<usize>,
    activated: Vec<bool>,
    nodes_done: usize,
    messages: u64,
    jitter: Option<(SmallRng, f64)>,
    fault: Option<FaultInjector>,
    /// First fatal condition seen by an event handler (checked by the
    /// main loop after every event).
    violation: Option<Violation>,
    /// Count of capacity-degradation events (see
    /// [`RunResult::forced_activations`]).
    forced: u64,
    /// Always-on metrics registry.
    metrics: RunMetrics,
    /// Flight recorder; `None` = disabled (the zero-cost path: every
    /// emission site is one branch).
    rec: Option<Recording>,
}

/// Runs the simulated parallel factorization.
///
/// Never panics and never hangs: a no-progress state, a virtual-time
/// runaway past [`SolverConfig::time_limit`], an accounting underflow, or
/// a protocol violation returns a typed [`SimError`] carrying a full
/// per-processor diagnostic snapshot.
pub fn run(
    tree: &AssemblyTree,
    map: &StaticMapping,
    cfg: &SolverConfig,
) -> Result<RunResult, SimError> {
    let n = tree.len();
    // Initial workloads: each processor starts with the cost of its
    // subtrees (Section 3); everyone knows this static information.
    let mut load0 = vec![0u64; cfg.nprocs];
    for v in 0..n {
        if map.subtree_of[v].is_some() {
            load0[map.owner[v]] += tree.flops(v);
        }
    }
    let procs: Vec<Proc> = (0..cfg.nprocs)
        .map(|p| Proc {
            mem: ProcMemory::new(cfg.record_traces),
            disk_busy_until: 0,
            views: Views::new(cfg.nprocs, &load0),
            pool: TaskPool::new(map.initial_pool[p].clone()),
            busy: false,
            slave_queue: VecDeque::new(),
            current_subtree: None,
            subtree_base: 0,
            stalled_since: None,
            soon: Default::default(),
        })
        .collect();

    let mut world = World {
        tree,
        map,
        cfg,
        sim: Sim::new(),
        net: cfg.network,
        procs,
        works: Vec::new(),
        pieces_expected: vec![None; n],
        pieces_got: vec![0; n],
        child_complete: vec![false; n],
        done_children: vec![0; n],
        cb_pieces: vec![Vec::new(); n],
        started_children: vec![0; n],
        activated: vec![false; n],
        nodes_done: 0,
        messages: 0,
        jitter: cfg.jitter.map(|(seed, pct)| (SmallRng::seed_from_u64(seed), pct)),
        // A quiet model cannot perturb anything: keep the exact fast
        // paths (broadcast blocks) so such runs stay bit-identical.
        fault: cfg.fault.clone().filter(|m| !m.is_quiet()).map(FaultInjector::new),
        violation: None,
        forced: 0,
        metrics: RunMetrics::new(cfg.nprocs),
        rec: cfg.record_events.then(|| Recording::new(cfg.event_capacity)),
    };

    for p in 0..cfg.nprocs {
        world.try_start(p);
    }
    loop {
        while let Some(Event { payload, .. }) = world.sim.next() {
            match payload {
                EventPayload::Message { from, to, msg } => world.deliver(from, to, msg),
                EventPayload::Timer { proc, key } => world.work_done(proc, key as usize),
            }
            if let Some(v) = world.violation.take() {
                return Err(world.error_of(v));
            }
            if let Some(limit) = cfg.time_limit {
                if world.sim.now() > limit {
                    return Err(SimError::TimeLimit { limit, diag: world.diagnostics() });
                }
            }
        }
        if world.nodes_done >= n {
            break;
        }
        // Drained queue with unfinished fronts. Under a hard capacity the
        // deadlock may be self-inflicted (every idle processor deferring
        // every task): force the globally cheapest deferred task and keep
        // going — degrading memory, never correctness. Otherwise it is a
        // genuine stall (e.g. a dead network): report it.
        if !world.force_one_deferred() {
            return Err(SimError::Stalled { diag: world.diagnostics() });
        }
        if let Some(v) = world.violation.take() {
            return Err(world.error_of(v));
        }
    }

    let disk_end = world.procs.iter().map(|p| p.disk_busy_until).max().unwrap_or(0);
    let makespan = world.sim.now().max(disk_end);
    let peaks: Vec<u64> = world.procs.iter().map(|p| p.mem.active_peak()).collect();
    let total_peaks: Vec<u64> = world.procs.iter().map(|p| p.mem.total_peak()).collect();
    let factor_entries: Vec<u64> = world.procs.iter().map(|p| p.mem.factors()).collect();
    let max_peak = peaks.iter().copied().max().unwrap_or(0);
    let avg_peak = peaks.iter().sum::<u64>() as f64 / peaks.len().max(1) as f64;
    Ok(RunResult {
        total_peaks,
        factor_entries,
        max_peak,
        avg_peak,
        makespan,
        messages: world.messages,
        traces: cfg
            .record_traces
            .then(|| world.procs.iter().map(|p| p.mem.trace().cloned().unwrap_or_default()).collect()),
        nodes_done: world.nodes_done,
        total_nodes: n,
        dropped_messages: world.fault.as_ref().map_or(0, |f| f.dropped()),
        forced_activations: world.forced,
        final_active: world.procs.iter().map(|p| p.mem.active()).collect(),
        underflows: world.procs.iter().map(|p| p.mem.underflows()).collect(),
        metrics: world.metrics,
        recording: world.rec,
        peaks,
    })
}

impl<'a> World<'a> {
    // ---------- diagnostics ----------

    fn diagnostics(&self) -> RunDiagnostics {
        RunDiagnostics {
            now: self.sim.now(),
            delivered_events: self.sim.delivered(),
            in_flight: self.sim.pending(),
            nodes_done: self.nodes_done,
            total_nodes: self.tree.len(),
            dropped_messages: self.fault.as_ref().map_or(0, |f| f.dropped()),
            metrics: Box::new(self.metrics.clone()),
            procs: self
                .procs
                .iter()
                .enumerate()
                .map(|(i, p)| ProcDiag {
                    proc: i,
                    busy: p.busy,
                    active: p.mem.active(),
                    stack: p.mem.stack(),
                    factors: p.mem.factors(),
                    pool: p.pool.as_slice().to_vec(),
                    queued_slave_tasks: p.slave_queue.len(),
                    current_subtree: p.current_subtree,
                    underflows: p.mem.underflows(),
                })
                .collect(),
        }
    }

    fn error_of(&self, v: Violation) -> SimError {
        let diag = self.diagnostics();
        match v {
            Violation::Accounting { proc, area } => SimError::Accounting { proc, area, diag },
            Violation::Protocol { detail } => SimError::Protocol { detail, diag },
        }
    }

    /// Records the first fatal condition; the main loop surfaces it after
    /// the current event handler unwinds.
    fn flag(&mut self, v: Violation) {
        if self.violation.is_none() {
            self.violation = Some(v);
        }
    }

    // ---------- flight recorder ----------

    /// Records an event when the recorder is enabled. The event is built
    /// inside the closure, so the disabled path is a single branch with
    /// no allocation — the zero-cost contract of the observability layer.
    #[inline]
    fn record(&mut self, build: impl FnOnce() -> SchedEvent) {
        let now = self.sim.now();
        if let Some(rec) = self.rec.as_mut() {
            rec.record(now, build());
        }
    }

    /// Refreshes `to`'s view entry of `about` and returns the age of the
    /// belief it replaced (the Figure 5 staleness).
    fn touch_view(&mut self, to: usize, about: usize) -> Time {
        let now = self.sim.now();
        self.procs[to].views.touch(about, now)
    }

    // ---------- messaging helpers ----------

    fn send(&mut self, from: usize, to: usize, msg: Msg, bytes: u64) {
        if from == to {
            self.deliver(from, to, msg);
            return;
        }
        self.messages += 1;
        match msg.class() {
            MsgClass::Control => {
                self.metrics.control_msgs += 1;
                self.metrics.control_bytes += bytes;
            }
            MsgClass::Status => {
                self.metrics.status_msgs += 1;
                self.metrics.status_bytes += bytes;
            }
        }
        match &mut self.fault {
            None => self.net.send(&mut self.sim, from, to, msg, bytes),
            Some(inj) => {
                let base = self.net.transfer_time(bytes);
                match inj.route(base, msg.class()) {
                    Some(t) => self.sim.schedule(t, EventPayload::Message { from, to, msg }),
                    None => {
                        self.metrics.dropped_status += 1;
                        self.record(|| SchedEvent::FaultDrop { from, to });
                    }
                }
            }
        }
    }

    fn broadcast(&mut self, from: usize, msg: Msg, bytes: u64) {
        // Every broadcast is a status refresh: record the send once (not
        // per receiver) with its payload value.
        if self.rec.is_some() {
            if let Some((kind, value)) = msg.status_kind() {
                self.record(|| SchedEvent::StatusSend { from, kind, value });
            }
        }
        debug_assert!(matches!(msg.class(), MsgClass::Status), "broadcast is status-only");
        if self.fault.is_none() {
            let n = self.cfg.nprocs.saturating_sub(1) as u64;
            self.messages += n;
            self.metrics.status_msgs += n;
            self.metrics.status_bytes += n * bytes;
            self.net.broadcast(&mut self.sim, from, self.cfg.nprocs, msg, bytes);
            return;
        }
        // Under fault every target is routed independently (jitter, delay
        // and drops are per-message), so the single-entry broadcast fast
        // path cannot apply.
        for to in 0..self.cfg.nprocs {
            if to != from {
                self.send(from, to, msg.clone(), bytes);
            }
        }
    }

    // ---------- memory helpers (every change refreshes the exact local
    // self-view and broadcasts the increment, Section 4) ----------

    fn mem_alloc_front(&mut self, p: usize, node: usize, entries: u64) {
        let now = self.sim.now();
        self.record(|| SchedEvent::MemAlloc { proc: p, node, area: MemArea::Front, entries });
        self.procs[p].mem.alloc_front(now, entries);
        self.after_mem_change(p, entries as i64);
    }

    fn mem_free_front(&mut self, p: usize, node: usize, entries: u64) {
        let now = self.sim.now();
        self.record(|| SchedEvent::MemFree { proc: p, node, area: MemArea::Front, entries });
        if !self.procs[p].mem.free_front(now, entries) {
            self.flag(Violation::Accounting { proc: p, area: "fronts" });
        }
        self.after_mem_change(p, -(entries as i64));
    }

    fn mem_push_cb(&mut self, p: usize, node: usize, entries: u64) {
        let now = self.sim.now();
        self.record(|| SchedEvent::MemAlloc { proc: p, node, area: MemArea::Stack, entries });
        self.procs[p].mem.push_cb(now, entries);
        self.after_mem_change(p, entries as i64);
    }

    fn mem_pop_cb(&mut self, p: usize, node: usize, entries: u64) {
        let now = self.sim.now();
        self.record(|| SchedEvent::MemFree { proc: p, node, area: MemArea::Stack, entries });
        if !self.procs[p].mem.pop_cb(now, entries) {
            self.flag(Violation::Accounting { proc: p, area: "stack" });
        }
        self.after_mem_change(p, -(entries as i64));
    }

    /// Stores factor entries: in core they join the factors area; out of
    /// core they stream to the processor's disk (overlapped with compute,
    /// tracked only as potential makespan).
    fn store_factors(&mut self, p: usize, entries: u64) {
        let now = self.sim.now();
        match self.cfg.out_of_core {
            None => self.procs[p].mem.store_factors(now, entries),
            Some(bw) => {
                let dur = (entries * 8 / bw.max(1)).max(1);
                let start = self.procs[p].disk_busy_until.max(now);
                self.procs[p].disk_busy_until = start + dur;
            }
        }
    }

    fn after_mem_change(&mut self, p: usize, delta: i64) {
        if delta == 0 {
            return;
        }
        let now = self.sim.now();
        let active = self.procs[p].mem.active();
        self.procs[p].views.mem[p] = active;
        // The self-view is exact: keep its freshness stamp current so
        // decision-time staleness reads 0 for the deciding processor.
        self.procs[p].views.touch(p, now);
        self.broadcast(p, Msg::MemDelta { delta }, 16);
    }

    fn load_change(&mut self, p: usize, delta: i64) {
        if delta == 0 {
            return;
        }
        self.procs[p].views.apply_load_delta(p, delta);
        self.broadcast(p, Msg::LoadDelta { delta }, 16);
    }

    // ---------- scheduling loop ----------

    /// Closes a stalled interval (idle with everything deferred) when the
    /// processor gets going again.
    fn close_stall(&mut self, p: usize) {
        if let Some(since) = self.procs[p].stalled_since.take() {
            let now = self.sim.now();
            self.metrics.procs[p].stalled_ticks += now.saturating_sub(since);
        }
    }

    fn try_start(&mut self, p: usize) {
        if self.procs[p].busy {
            return;
        }
        // Received slave tasks have priority (they are already consuming
        // memory; finishing them frees it).
        if let Some(key) = self.procs[p].slave_queue.pop_front() {
            let (flops, node, role) = match self.works.get(key).map(|(_, w)| w) {
                Some(Work::Slave { flops, node, .. }) => (*flops, *node, TaskRole::Slave),
                Some(Work::RootShare { flops, node, .. }) => (*flops, *node, TaskRole::Root),
                other => {
                    self.flag(Violation::Protocol {
                        detail: format!("queued work {key} on proc {p} must be slave-like, got {other:?}"),
                    });
                    return;
                }
            };
            let duration = self.duration_of(p, flops);
            self.close_stall(p);
            self.procs[p].busy = true;
            self.metrics.procs[p].busy_ticks += duration;
            self.record(|| SchedEvent::ComputeStart { proc: p, node, role });
            self.sim.schedule_timer(p, duration, key as u64);
            return;
        }
        let tree = self.tree;
        let map = self.map;
        let nprocs = self.cfg.nprocs;
        let pieces = &self.cb_pieces;
        let cost = |v: usize| match map.kind[v] {
            NodeKind::Type2 => tree.master_entries(v),
            NodeKind::Type3 => tree.front_entries(v) / nprocs as u64,
            _ => tree.front_entries(v),
        };
        // Hard capacity: an out-of-subtree activation is deferred unless
        // its net memory need (activation cost minus the locally stacked
        // CBs it releases) fits under the cap. Subtree tasks are always
        // admissible — the static mapping sized them in, and depth-first
        // progress inside a subtree is what frees its memory.
        let cap = self.cfg.capacity;
        let active = self.procs[p].mem.active();
        let admissible = |v: usize| match cap {
            None => true,
            Some(c) => {
                map.subtree_of[v].is_some() || {
                    let local_release: u64 =
                        pieces[v].iter().filter(|&&(h, _, _)| h == p).map(|&(_, e, _)| e).sum();
                    active + cost(v).saturating_sub(local_release) <= c
                }
            }
        };
        let depth = self.procs[p].pool.len();
        let picked = match self.cfg.task_selection {
            TaskSelection::Lifo => match cap {
                None => self.procs[p].pool.pick_lifo(),
                Some(_) => self.procs[p].pool.pick_lifo_admissible(admissible),
            },
            TaskSelection::MemoryAware | TaskSelection::MemoryAwareGlobal => {
                let current = self.effective_memory(p);
                let observed = self.procs[p].mem.active_peak();
                match self.cfg.task_selection {
                    TaskSelection::MemoryAware => self.procs[p].pool.pick_memory_aware(
                        |v| map.subtree_of[v].is_some(),
                        cost,
                        current,
                        observed,
                        admissible,
                    ),
                    _ => self.procs[p].pool.pick_memory_aware_global(
                        |v| map.subtree_of[v].is_some(),
                        cost,
                        |v| pieces[v].iter().map(|&(_, e, _)| e).sum(),
                        current,
                        observed,
                        admissible,
                    ),
                }
            }
        };
        if depth > 0 {
            // A real decision was taken over a non-empty pool: observe it.
            self.metrics.pool_depth.observe(depth as u64);
            self.record(|| SchedEvent::PoolDecision { proc: p, depth, picked });
            if picked.is_none() {
                // The Algorithm-2 / capacity verdict deferred everything:
                // the processor is stalled until memory frees.
                self.metrics.procs[p].deferrals += 1;
                let now = self.sim.now();
                self.procs[p].stalled_since.get_or_insert(now);
            }
        }
        if let Some(v) = picked {
            self.activate_node(p, v);
        }
    }

    /// Memory an activation of `v` allocates on its owner (the cost used
    /// by Algorithm 2, the capacity check, and the prediction mechanism).
    fn activation_cost(&self, v: usize) -> u64 {
        match self.map.kind[v] {
            NodeKind::Type2 => self.tree.master_entries(v),
            NodeKind::Type3 => self.tree.front_entries(v) / self.cfg.nprocs as u64,
            _ => self.tree.front_entries(v),
        }
    }

    /// Last-resort degradation step under a hard capacity: when the event
    /// queue drains with unfinished fronts because every idle processor
    /// is deferring every ready task, force the globally cheapest
    /// deferred activation so the factorization completes (degrading
    /// memory, never correctness). Returns `false` when there is nothing
    /// to force (a genuine stall).
    fn force_one_deferred(&mut self) -> bool {
        if self.cfg.capacity.is_none() {
            return false;
        }
        let mut best: Option<(u64, usize, usize)> = None; // (cost, proc, node)
        for p in 0..self.cfg.nprocs {
            if self.procs[p].busy || !self.procs[p].slave_queue.is_empty() {
                continue;
            }
            for &v in self.procs[p].pool.as_slice() {
                let cand = (self.activation_cost(v), p, v);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        let Some((cost, p, v)) = best else { return false };
        self.procs[p].pool.remove_task(v);
        self.forced += 1;
        self.metrics.forced_activations += 1;
        self.record(|| SchedEvent::Forced { proc: p, node: v, cost });
        self.activate_node(p, v);
        true
    }

    /// Algorithm 2's "current memory (including peak of subtree)": while a
    /// subtree is in progress its projected peak counts.
    fn effective_memory(&self, p: usize) -> u64 {
        let active = self.procs[p].mem.active();
        match self.procs[p].current_subtree {
            Some(s) => active.max(self.procs[p].subtree_base + self.map.subtree_peak[s]),
            None => active,
        }
    }

    fn activate_node(&mut self, p: usize, v: usize) {
        debug_assert_eq!(self.map.owner[v], p);
        debug_assert!(!self.activated[v], "node {v} activated twice");
        self.activated[v] = true;
        self.close_stall(p);
        self.procs[p].busy = true;
        self.metrics.procs[p].activations += 1;
        let class = match self.map.kind[v] {
            NodeKind::Subtree(_) => FrontClass::Subtree,
            NodeKind::Type1 => FrontClass::Type1,
            NodeKind::Type2 => FrontClass::Type2,
            NodeKind::Type3 => FrontClass::Type3,
        };
        self.record(|| SchedEvent::Activate { proc: p, node: v, class });

        if self.cfg.use_prediction {
            // This task is no longer "upcoming": refresh the broadcast.
            if self.procs[p].soon.remove(&v).is_some() {
                self.rebroadcast_prediction(p);
            }
            // Tell the parent's master we started (its readiness predictor).
            if let Some(par) = self.tree.nodes[v].parent {
                let owner = self.map.owner[par];
                self.send(p, owner, Msg::ChildStarted { node: par }, 16);
            }
        }

        // Entering a subtree broadcasts its peak (Section 5.1).
        if let Some(s) = self.map.subtree_of[v] {
            if self.procs[p].current_subtree != Some(s) {
                self.procs[p].current_subtree = Some(s);
                self.procs[p].subtree_base = self.procs[p].mem.active();
                if self.cfg.use_subtree_info {
                    // Broadcast the absolute level this stack is heading
                    // to (base + subtree peak), Section 5.1.
                    let peak = self.procs[p].subtree_base + self.map.subtree_peak[s];
                    self.procs[p].views.subtree[p] = peak;
                    self.broadcast(p, Msg::SubtreePeak { peak }, 16);
                }
            }
        }

        match self.map.kind[v] {
            NodeKind::Subtree(_) | NodeKind::Type1 => self.start_full_front(p, v),
            NodeKind::Type2 => self.start_type2(p, v),
            NodeKind::Type3 => self.start_type3(p, v),
        }
    }

    fn start_full_front(&mut self, p: usize, v: usize) {
        self.mem_alloc_front(p, v, self.tree.front_entries(v));
        self.consume_stacked(p, v);
        let flops = self.tree.flops(v);
        self.schedule_work(p, Work::Elim { node: v, flops });
    }

    /// One slave-selection decision for the type-2 node `v` on master `p`
    /// restricted to `candidates` (the capacity filter shrinks the set
    /// and re-selects). Also returns the per-processor metric vector the
    /// decision was made from — the flight recorder captures exactly what
    /// the master *believed*, not what was true.
    fn select_slaves(
        &self,
        p: usize,
        v: usize,
        candidates: &[usize],
    ) -> (Vec<SlaveAssignment>, Vec<u64>) {
        let nd = &self.tree.nodes[v];
        let (nfront, npiv) = (nd.nfront, nd.npiv);
        let metric: Vec<u64> = (0..self.cfg.nprocs)
            .map(|q| {
                let views = &self.procs[p].views;
                match self.cfg.slave_selection {
                    SlaveSelection::Workload => views.load[q],
                    SlaveSelection::Memory | SlaveSelection::Hybrid => views.memory_metric(
                        q,
                        self.cfg.use_subtree_info,
                        self.cfg.use_prediction,
                    ),
                }
            })
            .collect();
        let raw_mem: Vec<u64> = (0..self.cfg.nprocs).map(|q| self.procs[p].views.mem[q]).collect();
        let input = SelectionInput {
            candidates,
            metric: &metric,
            fill_metric: matches!(
                self.cfg.slave_selection,
                SlaveSelection::Memory | SlaveSelection::Hybrid
            )
            .then_some(raw_mem.as_slice()),
            master_metric: metric[p],
            nfront,
            npiv,
            sym: self.tree.sym,
            min_rows_per_slave: self.cfg.min_rows_per_slave,
        };
        let assignment = match self.cfg.slave_selection {
            SlaveSelection::Workload => select_workload(&input),
            SlaveSelection::Memory => select_memory(&input),
            SlaveSelection::Hybrid => {
                let load: Vec<u64> =
                    (0..self.cfg.nprocs).map(|q| self.procs[p].views.load[q]).collect();
                crate::slavesel::select_hybrid(&input, &load, load[p])
            }
        };
        (assignment, metric)
    }

    fn start_type2(&mut self, p: usize, v: usize) {
        let nd = &self.tree.nodes[v];
        let (nfront, npiv) = (nd.nfront, nd.npiv);
        let mut candidates: Vec<usize> = (0..self.cfg.nprocs).filter(|&q| q != p).collect();
        let mut rounds = 0u32;
        let mut serialized = false;
        let (assignment, metric) = loop {
            let picked = self.select_slaves(p, v, &candidates);
            let Some(cap) = self.cfg.capacity else { break picked };
            let (assignment, metric) = picked;
            if assignment.is_empty() {
                break (assignment, metric);
            }
            // Hard capacity: drop every candidate whose projected memory
            // (the master's view plus the block it would receive) would
            // breach the cap, and re-select over the survivors — fewer,
            // larger shares on the processors that still have room.
            let violators: Vec<usize> = assignment
                .iter()
                .filter(|a| {
                    let entries = crate::blocking::slave_block_entries(
                        self.tree.sym,
                        nfront,
                        npiv,
                        a.offset,
                        a.nrows,
                    );
                    self.procs[p].views.mem[a.proc] + entries > cap
                })
                .map(|a| a.proc)
                .collect();
            if violators.is_empty() {
                break (assignment, metric);
            }
            rounds += 1;
            self.metrics.reselect_rounds += 1;
            if self.rec.is_some() {
                let dropped = violators.clone();
                self.record(|| SchedEvent::Reselect { master: p, node: v, dropped });
            }
            candidates.retain(|q| !violators.contains(q));
            if candidates.is_empty() {
                // Last resort: serialize the whole front on the master.
                self.forced += 1;
                self.metrics.serialized_fronts += 1;
                serialized = true;
                break (Vec::new(), metric);
            }
        };

        // Observe decision-time view staleness (always-on) and record the
        // full decision — the believed metric vector, per-processor view
        // ages, the chosen blocks, and how the capacity loop resolved.
        let now = self.sim.now();
        for a in &assignment {
            let age = self.procs[p].views.age(a.proc, now);
            self.metrics.view_staleness.observe(age);
        }
        if self.rec.is_some() {
            let view_age: Vec<Time> =
                (0..self.cfg.nprocs).map(|q| self.procs[p].views.age(q, now)).collect();
            let picked: Vec<SlavePick> = assignment
                .iter()
                .map(|a| SlavePick {
                    proc: a.proc,
                    entries: crate::blocking::slave_block_entries(
                        self.tree.sym,
                        nfront,
                        npiv,
                        a.offset,
                        a.nrows,
                    ),
                })
                .collect();
            let serialized = serialized || assignment.is_empty();
            self.record(|| SchedEvent::SlaveSelection {
                master: p,
                node: v,
                metric,
                view_age,
                picked,
                rounds,
                serialized,
            });
        }

        if assignment.is_empty() {
            // No usable slave: the master handles the whole front.
            self.start_full_front(p, v);
            return;
        }

        self.mem_alloc_front(p, v, self.tree.master_entries(v));
        self.consume_stacked(p, v);

        let total_flops = self.tree.flops(v);
        let front_entries = self.tree.front_entries(v);
        let master_entries = self.tree.master_entries(v);
        let master_flops = total_flops * master_entries / front_entries.max(1);
        let mut delegated = 0u64;
        let pieces = assignment.len();
        for a in &assignment {
            let entries = crate::blocking::slave_block_entries(
                self.tree.sym,
                nfront,
                npiv,
                a.offset,
                a.nrows,
            );
            let cb_share = cb_share_of_block(self.tree.sym, nfront, npiv, a.offset, a.nrows);
            let factor_share = entries - cb_share;
            let flops_share = total_flops * entries / front_entries.max(1);
            delegated += flops_share;
            self.send(
                p,
                a.proc,
                Msg::SlaveTask { node: v, entries, cb_share, factor_share, flops_share },
                entries * 8,
            );
            // Announce the choice so other masters account for it before
            // the slave's own memory reports catch up (Section 4).
            self.procs[p].views.apply_mem_delta(a.proc, entries as i64);
            self.procs[p].views.touch(a.proc, now);
            self.broadcast(p, Msg::Assigned { proc: a.proc, entries }, 16);
        }
        // Work handed to the slaves leaves the master's workload.
        self.load_change(p, -(delegated as i64));
        self.schedule_work(p, Work::MasterPart { node: v, pieces, flops: master_flops });
    }

    fn start_type3(&mut self, p: usize, v: usize) {
        self.consume_stacked(p, v);
        let share_entries = (self.tree.front_entries(v) / self.cfg.nprocs as u64).max(1);
        let share_flops = self.tree.flops(v) / self.cfg.nprocs as u64;
        for q in 0..self.cfg.nprocs {
            if q != p {
                self.send(
                    p,
                    q,
                    Msg::Type3Share { node: v, entries: share_entries, flops_share: share_flops },
                    share_entries * 8,
                );
            }
        }
        // Work scattered to the other processors leaves this workload.
        let total_flops = self.tree.flops(v);
        self.load_change(p, -((total_flops - share_flops) as i64));
        self.mem_alloc_front(p, v, share_entries);
        self.schedule_work(
            p,
            Work::RootShare { node: v, entries: share_entries, flops: share_flops, is_master: true },
        );
    }

    fn schedule_work(&mut self, p: usize, work: Work) {
        let (flops, node, role) = match &work {
            Work::Elim { flops, node } => (*flops, *node, TaskRole::Elim),
            Work::MasterPart { flops, node, .. } => (*flops, *node, TaskRole::Master),
            Work::Slave { flops, node, .. } => (*flops, *node, TaskRole::Slave),
            Work::RootShare { flops, node, .. } => (*flops, *node, TaskRole::Root),
        };
        let duration = self.duration_of(p, flops);
        self.metrics.procs[p].busy_ticks += duration;
        self.record(|| SchedEvent::ComputeStart { proc: p, node, role });
        let key = self.works.len();
        self.works.push((p, work));
        self.sim.schedule_timer(p, duration, key as u64);
    }

    fn duration_of(&mut self, p: usize, flops: u64) -> Time {
        let exact = (flops / self.cfg.flops_per_tick.max(1)).max(1);
        let base = match &mut self.jitter {
            None => exact,
            Some((rng, pct)) => {
                // Multiplicative noise in [1-pct, 1+pct].
                let factor = 1.0 + *pct * (rng.gen::<f64>() * 2.0 - 1.0);
                ((exact as f64 * factor).round() as Time).max(1)
            }
        };
        // Straggler processors compute slower by their speed factor.
        match &self.fault {
            None => base,
            Some(f) => {
                let factor = f.speed_factor(p);
                if factor > 1.0 {
                    ((base as f64 * factor).round() as Time).max(1)
                } else {
                    base
                }
            }
        }
    }

    /// Releases the contribution blocks stacked for node `v` (the
    /// assembly): local pieces pop immediately; remote holders are told to
    /// ship-and-free theirs (one control-message latency away, like the
    /// real redistribution).
    fn consume_stacked(&mut self, p: usize, v: usize) {
        let pieces = std::mem::take(&mut self.cb_pieces[v]);
        for (holder, entries, child) in pieces {
            if holder == p {
                self.mem_pop_cb(p, child, entries);
            } else {
                self.send(p, holder, Msg::FetchCb { child, entries }, 16);
            }
        }
    }

    // ---------- completions ----------

    fn work_done(&mut self, p: usize, key: usize) {
        let Some((wp, work)) = self.works.get(key).cloned() else {
            self.flag(Violation::Protocol { detail: format!("timer fired for unknown work key {key}") });
            return;
        };
        debug_assert_eq!(wp, p);
        match work {
            Work::Elim { node, flops } => {
                self.record(|| SchedEvent::ComputeEnd { proc: p, node, role: TaskRole::Elim });
                self.store_factors(p, self.tree.factor_entries(node));
                self.mem_free_front(p, node, self.tree.front_entries(node));
                let cb = self.tree.cb_entries(node);
                let pieces = if cb > 0 && self.tree.nodes[node].parent.is_some() { 1 } else { 0 };
                if pieces == 1 {
                    self.produce_cb_piece(p, node, cb);
                }
                self.finish_node(p, node, pieces, flops);
            }
            Work::MasterPart { node, pieces, flops } => {
                self.record(|| SchedEvent::ComputeEnd { proc: p, node, role: TaskRole::Master });
                self.store_factors(p, self.tree.master_entries(node));
                self.mem_free_front(p, node, self.tree.master_entries(node));
                self.finish_node(p, node, pieces, flops);
            }
            Work::Slave { node, entries, cb_share, factor_share, flops } => {
                self.record(|| SchedEvent::ComputeEnd { proc: p, node, role: TaskRole::Slave });
                self.store_factors(p, factor_share);
                self.mem_free_front(p, node, entries);
                if cb_share > 0 && self.tree.nodes[node].parent.is_some() {
                    self.produce_cb_piece(p, node, cb_share);
                }
                self.load_change(p, -(flops as i64));
                self.procs[p].busy = false;
                self.try_start(p);
            }
            Work::RootShare { node, entries, flops, is_master } => {
                self.record(|| SchedEvent::ComputeEnd { proc: p, node, role: TaskRole::Root });
                self.store_factors(p, entries);
                self.mem_free_front(p, node, entries);
                self.load_change(p, -(flops as i64));
                if is_master {
                    // The 2-D root has no parent: completing the master
                    // share completes the node.
                    debug_assert!(self.tree.nodes[node].parent.is_none());
                    self.nodes_done += 1;
                }
                self.procs[p].busy = false;
                self.try_start(p);
            }
        }
    }

    /// Common tail of a node's (master) elimination: announce completion,
    /// leave any finished subtree, account the work, count the node.
    fn finish_node(&mut self, p: usize, node: usize, pieces: usize, flops: u64) {
        if let Some(par) = self.tree.nodes[node].parent {
            let owner = self.map.owner[par];
            self.send(p, owner, Msg::Complete { child: node, pieces }, 16);
        }
        self.load_change(p, -(flops as i64));
        if let Some(s) = self.procs[p].current_subtree {
            if self.map.subtree_roots[s] == node {
                self.procs[p].current_subtree = None;
                if self.cfg.use_subtree_info {
                    self.procs[p].views.subtree[p] = 0;
                    self.broadcast(p, Msg::SubtreePeak { peak: 0 }, 16);
                }
            }
        }
        self.nodes_done += 1;
        self.procs[p].busy = false;
        self.try_start(p);
    }

    /// A CB piece of `child` was produced on `p`: it stays on `p`'s stack
    /// until the parent activates; the parent's master is informed.
    fn produce_cb_piece(&mut self, p: usize, child: usize, entries: u64) {
        self.mem_push_cb(p, child, entries);
        let Some(parent) = self.tree.nodes[child].parent else {
            self.flag(Violation::Protocol {
                detail: format!("CB piece produced for parentless node {child}"),
            });
            return;
        };
        let dest = self.map.owner[parent];
        self.send(p, dest, Msg::PieceDone { child, holder: p, entries }, 16);
    }

    // ---------- message handling ----------

    fn deliver(&mut self, from: usize, to: usize, msg: Msg) {
        match msg {
            Msg::PieceDone { child, holder, entries } => {
                let Some(parent) = self.tree.nodes[child].parent else {
                    self.flag(Violation::Protocol {
                        detail: format!("PieceDone for parentless node {child}"),
                    });
                    return;
                };
                // If the parent already activated, release immediately.
                if self.activated[parent] {
                    if holder == to {
                        self.mem_pop_cb(to, child, entries);
                        // Freed memory may admit a deferred task.
                        if self.cfg.capacity.is_some() {
                            self.try_start(to);
                        }
                    } else {
                        self.send(to, holder, Msg::FetchCb { child, entries }, 16);
                    }
                } else {
                    self.cb_pieces[parent].push((holder, entries, child));
                }
                self.pieces_got[child] += 1;
                self.check_child_done(to, child);
            }
            Msg::FetchCb { child, entries } => {
                self.mem_pop_cb(to, child, entries);
                // Freed memory may admit a deferred task (only meaningful
                // under a hard capacity; without one, nothing was ever
                // deferred and this keeps the happy path untouched).
                if self.cfg.capacity.is_some() {
                    self.try_start(to);
                }
            }
            Msg::Complete { child, pieces } => {
                self.pieces_expected[child] = Some(pieces);
                self.child_complete[child] = true;
                self.check_child_done(to, child);
            }
            Msg::SlaveTask { node, entries, cb_share, factor_share, flops_share } => {
                // "Slave tasks are activated as soon as they are received":
                // the memory is allocated now, the CPU when free. No
                // increment is broadcast — the master's Assigned message
                // already announced this allocation to everyone.
                let now = self.sim.now();
                self.record(|| SchedEvent::MemAlloc {
                    proc: to,
                    node,
                    area: MemArea::Front,
                    entries,
                });
                self.procs[to].mem.alloc_front(now, entries);
                let active = self.procs[to].mem.active();
                self.procs[to].views.mem[to] = active;
                self.procs[to].views.touch(to, now);
                self.metrics.procs[to].slave_tasks += 1;
                self.load_change(to, flops_share as i64);
                let key = self.works.len();
                self.works.push((
                    to,
                    Work::Slave { node, entries, cb_share, factor_share, flops: flops_share },
                ));
                self.procs[to].slave_queue.push_back(key);
                self.try_start(to);
            }
            Msg::Type3Share { node, entries, flops_share } => {
                self.mem_alloc_front(to, node, entries);
                self.load_change(to, flops_share as i64);
                let key = self.works.len();
                self.works.push((
                    to,
                    Work::RootShare { node, entries, flops: flops_share, is_master: false },
                ));
                self.procs[to].slave_queue.push_back(key);
                self.try_start(to);
            }
            Msg::MemDelta { delta } => {
                let age = self.touch_view(to, from);
                self.procs[to].views.apply_mem_delta(from, delta);
                self.record(|| SchedEvent::StatusApply {
                    to,
                    from,
                    about: from,
                    kind: StatusKind::MemDelta,
                    age,
                });
            }
            Msg::Assigned { proc, entries } => {
                // Skip the slave itself: its self-view is exact.
                if proc != to {
                    let age = self.touch_view(to, proc);
                    self.procs[to].views.apply_mem_delta(proc, entries as i64);
                    self.record(|| SchedEvent::StatusApply {
                        to,
                        from,
                        about: proc,
                        kind: StatusKind::Assigned,
                        age,
                    });
                }
            }
            Msg::LoadDelta { delta } => {
                let age = self.touch_view(to, from);
                self.procs[to].views.apply_load_delta(from, delta);
                self.record(|| SchedEvent::StatusApply {
                    to,
                    from,
                    about: from,
                    kind: StatusKind::LoadDelta,
                    age,
                });
            }
            Msg::SubtreePeak { peak } => {
                let age = self.touch_view(to, from);
                self.procs[to].views.subtree[from] = peak;
                self.record(|| SchedEvent::StatusApply {
                    to,
                    from,
                    about: from,
                    kind: StatusKind::SubtreePeak,
                    age,
                });
            }
            Msg::Predicted { cost } => {
                let age = self.touch_view(to, from);
                self.procs[to].views.predicted[from] = cost;
                self.record(|| SchedEvent::StatusApply {
                    to,
                    from,
                    about: from,
                    kind: StatusKind::Predicted,
                    age,
                });
            }
            Msg::ChildStarted { node } => {
                self.started_children[node] += 1;
                if self.started_children[node] == self.tree.nodes[node].children.len()
                    && self.map.owner[node] == to
                    && self.map.subtree_of[node].is_none()
                    && !self.activated[node]
                {
                    let cost = self.activation_cost(node);
                    self.procs[to].soon.insert(node, cost);
                    self.rebroadcast_prediction(to);
                }
            }
        }
    }

    fn check_child_done(&mut self, q: usize, child: usize) {
        if !self.child_complete[child] || Some(self.pieces_got[child]) != self.pieces_expected[child]
        {
            return;
        }
        self.child_complete[child] = false; // fire once
        let Some(parent) = self.tree.nodes[child].parent else {
            self.flag(Violation::Protocol {
                detail: format!("completion tracked for parentless node {child}"),
            });
            return;
        };
        self.done_children[parent] += 1;
        if self.done_children[parent] == self.tree.nodes[parent].children.len() {
            self.node_ready(q, parent);
        }
    }

    fn node_ready(&mut self, q: usize, v: usize) {
        debug_assert_eq!(self.map.owner[v], q);
        self.procs[q].pool.push(v);
        // Upper tasks enter the workload when they become ready; subtree
        // work was counted in the initial loads (Section 3).
        if self.map.subtree_of[v].is_none() {
            self.load_change(q, self.tree.flops(v) as i64);
        }
        self.try_start(q);
    }

    fn rebroadcast_prediction(&mut self, p: usize) {
        let max = self.procs[p].soon.values().copied().max().unwrap_or(0);
        if self.procs[p].views.predicted[p] != max {
            self.procs[p].views.predicted[p] = max;
            self.broadcast(p, Msg::Predicted { cost: max }, 16);
        }
    }
}

/// CB entries inside a slave block: the columns right of the pivot block,
/// restricted to the block's rows (full width for LU, ragged for LDLᵀ).
fn cb_share_of_block(
    sym: mf_sparse::Symmetry,
    nfront: usize,
    npiv: usize,
    offset: usize,
    nrows: usize,
) -> u64 {
    match sym {
        mf_sparse::Symmetry::General => (nrows as u64) * (nfront - npiv) as u64,
        mf_sparse::Symmetry::Symmetric => {
            // Row at offset o holds o+1 CB entries (its tail past the
            // pivot columns).
            let a = offset as u64;
            let b = a + nrows as u64;
            (b * (b + 1) / 2) - (a * (a + 1) / 2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::mapping::compute_mapping;
    use mf_order::OrderingKind;
    use mf_sparse::gen::grid::{grid2d, Stencil};
    use mf_symbolic::seqstack::{sequential_peak, AssemblyDiscipline};
    use mf_symbolic::AmalgamationOptions;

    fn tree_for(nx: usize) -> AssemblyTree {
        let a = grid2d(nx, nx, Stencil::Star);
        let p = OrderingKind::Metis.compute(&a);
        let mut s = mf_symbolic::analyze(&a, &p, &AmalgamationOptions::default());
        mf_symbolic::seqstack::apply_liu_order(
            &mut s.tree,
            AssemblyDiscipline::FrontThenFree,
        );
        s.tree
    }

    #[test]
    fn all_nodes_complete() {
        let tree = tree_for(24);
        for nprocs in [1, 2, 4, 8] {
            let cfg = SolverConfig {
                type2_front_min: 24,
                ..SolverConfig::mumps_baseline(nprocs)
            };
            let map = compute_mapping(&tree, &cfg);
            let r = run(&tree, &map, &cfg).unwrap();
            assert_eq!(r.nodes_done, r.total_nodes, "nprocs={nprocs}");
            assert!(r.makespan > 0);
        }
    }

    #[test]
    fn single_processor_matches_sequential_model() {
        // With one processor, no slaves and LIFO selection, the simulated
        // execution is exactly the sequential postorder factorization, so
        // the peak must equal the symbolic model's.
        let tree = tree_for(20);
        let cfg = SolverConfig::mumps_baseline(1);
        let map = compute_mapping(&tree, &cfg);
        let r = run(&tree, &map, &cfg).unwrap();
        assert_eq!(r.nodes_done, r.total_nodes);
        assert_eq!(r.max_peak, sequential_peak(&tree, AssemblyDiscipline::FrontThenFree));
    }

    #[test]
    fn deterministic_runs() {
        let tree = tree_for(20);
        let cfg = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg);
        let r1 = run(&tree, &map, &cfg).unwrap();
        let r2 = run(&tree, &map, &cfg).unwrap();
        assert_eq!(r1.peaks, r2.peaks);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.messages, r2.messages);
    }

    #[test]
    fn memory_strategy_runs_and_completes() {
        let tree = tree_for(28);
        for cfg in [
            SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(8) },
            SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(8) },
        ] {
            let map = compute_mapping(&tree, &cfg);
            let r = run(&tree, &map, &cfg).unwrap();
            assert_eq!(r.nodes_done, r.total_nodes);
            assert!(r.max_peak > 0);
        }
    }

    #[test]
    fn out_of_core_removes_factor_memory() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &cfg0);
        let incore = run(&tree, &map, &cfg0).unwrap();
        // Fast disk: factors stream out, stack behaviour unchanged.
        let fast = SolverConfig { out_of_core: Some(u64::MAX), ..cfg0.clone() };
        let r = run(&tree, &map, &fast).unwrap();
        assert_eq!(r.nodes_done, r.total_nodes);
        assert_eq!(r.peaks, incore.peaks, "stack behaviour must not change");
        assert_eq!(r.total_peaks, r.peaks, "no factors in core");
        assert!(r.factor_entries.iter().all(|&f| f == 0));
        assert!(incore.total_peaks.iter().sum::<u64>() > incore.peaks.iter().sum::<u64>());
        // Slow disk: same memory, longer makespan (disk is the bottleneck).
        let slow = SolverConfig { out_of_core: Some(1), ..cfg0 };
        let rs = run(&tree, &map, &slow).unwrap();
        assert_eq!(rs.peaks, incore.peaks);
        assert!(rs.makespan > incore.makespan, "{} !> {}", rs.makespan, incore.makespan);
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &cfg0);
        let exact = run(&tree, &map, &cfg0).unwrap();
        let j1 = SolverConfig { jitter: Some((7, 0.1)), ..cfg0.clone() };
        let r1 = run(&tree, &map, &j1).unwrap();
        let r2 = run(&tree, &map, &j1).unwrap();
        // Same seed: bit-identical. All fronts still complete.
        assert_eq!(r1.peaks, r2.peaks);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.nodes_done, r1.total_nodes);
        // Makespan moves but stays in the same ballpark (±~30%).
        let lo = exact.makespan as f64 * 0.7;
        let hi = exact.makespan as f64 * 1.3;
        assert!((r1.makespan as f64) > lo && (r1.makespan as f64) < hi);
        // A different seed generally yields a different schedule.
        let r3 = run(&tree, &map, &SolverConfig { jitter: Some((8, 0.1)), ..cfg0 }).unwrap();
        assert!(r3.makespan != r1.makespan || r3.peaks != r1.peaks);
    }

    #[test]
    fn traces_cover_all_processors() {
        let tree = tree_for(16);
        let cfg = SolverConfig {
            record_traces: true,
            type2_front_min: 24,
            ..SolverConfig::mumps_baseline(4)
        };
        let map = compute_mapping(&tree, &cfg);
        let r = run(&tree, &map, &cfg).unwrap();
        let traces = r.traces.unwrap();
        assert_eq!(traces.len(), 4);
        // Traces keep within-instant transients (TraceSample::high), so
        // their max agrees exactly with the accounting peak — per
        // processor and globally.
        for (t, &pk) in traces.iter().zip(&r.peaks) {
            assert_eq!(t.max(), pk, "trace max must equal active_peak");
        }
        let tmax = traces.iter().map(|t| t.max()).max().unwrap();
        assert_eq!(tmax, r.max_peak, "tmax={tmax} peak={}", r.max_peak);
    }

    #[test]
    fn recording_attribution_sums_to_peaks() {
        // The flight recording replays to the exact accounting peaks: for
        // every processor the attributed composition sums to active_peak.
        let tree = tree_for(24);
        for cfg0 in [
            SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) },
            SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) },
        ] {
            let cfg = SolverConfig { record_events: true, ..cfg0 };
            let map = compute_mapping(&tree, &cfg);
            let r = run(&tree, &map, &cfg).unwrap();
            let rec = r.recording.as_ref().expect("recording enabled");
            assert_eq!(rec.dropped(), 0, "unbounded recording must be complete");
            assert!(!rec.is_empty());
            let att = mf_sim::attribute_peaks(cfg.nprocs, rec);
            assert_eq!(att.len(), cfg.nprocs);
            for a in &att {
                assert_eq!(a.peak, r.peaks[a.proc], "proc {}", a.proc);
                let sum: u64 = a.composition.iter().map(|it| it.entries).sum();
                assert_eq!(sum, a.peak, "composition must sum to the peak on proc {}", a.proc);
            }
        }
    }

    #[test]
    fn recording_is_deterministic_and_absent_when_disabled() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg0);
        let plain = run(&tree, &map, &cfg0).unwrap();
        assert!(plain.recording.is_none());
        let cfg = SolverConfig { record_events: true, ..cfg0 };
        let r1 = run(&tree, &map, &cfg).unwrap();
        let r2 = run(&tree, &map, &cfg).unwrap();
        assert_eq!(r1.recording, r2.recording, "recordings must be bit-identical");
        // Observability must not perturb the schedule.
        assert_eq!(r1.peaks, plain.peaks);
        assert_eq!(r1.makespan, plain.makespan);
        assert_eq!(r1.messages, plain.messages);
    }

    #[test]
    fn metrics_account_all_traffic() {
        let tree = tree_for(20);
        let cfg = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg);
        let r = run(&tree, &map, &cfg).unwrap();
        let m = &r.metrics;
        // Every counted message is either control or status.
        assert_eq!(m.total_msgs(), r.messages);
        assert!(m.control_msgs > 0 && m.status_msgs > 0);
        assert!(m.control_bytes > 0 && m.status_bytes > 0);
        assert_eq!(m.dropped_status, 0);
        assert_eq!(m.procs.len(), 4);
        // Busy time: positive, and no processor is busy longer than the run.
        for p in &m.procs {
            assert!(p.busy_ticks > 0 && p.busy_ticks <= r.makespan);
            assert_eq!(p.stalled_ticks, 0, "no capacity, no stalls");
        }
        // One activation per owner-activated node.
        let acts: u64 = m.procs.iter().map(|p| p.activations).sum();
        assert!(acts as usize <= r.total_nodes);
        assert!(m.view_staleness.count > 0, "type-2 selections observed staleness");
        assert!(m.pool_depth.count > 0);
    }

    #[test]
    fn capped_run_reports_deferrals_in_metrics() {
        let tree = tree_for(24);
        let base = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &base);
        let free = run(&tree, &map, &base).unwrap();
        // A capacity of 1 makes every out-of-subtree activation
        // inadmissible: each one is deferred until the stall-breaker
        // forces it, exercising the whole degradation ladder.
        let capped = SolverConfig { capacity: Some(1), record_events: true, ..base };
        let r = run(&tree, &map, &capped).unwrap();
        assert_eq!(r.nodes_done, r.total_nodes);
        let deferrals: u64 = r.metrics.procs.iter().map(|p| p.deferrals).sum();
        assert!(deferrals > 0, "a tight cap must defer something");
        assert!(r.forced_activations > 0);
        assert_eq!(
            r.metrics.serialized_fronts + r.metrics.forced_activations,
            r.forced_activations,
            "metrics split the degradation counter exactly"
        );
        let stalled: u64 = r.metrics.procs.iter().map(|p| p.stalled_ticks).sum();
        assert!(stalled > 0, "deferred processors accumulate stalled time");
        assert!(r.makespan >= free.makespan);
        // The recording saw the same story.
        let rec = r.recording.unwrap();
        assert!(rec
            .events()
            .any(|te| matches!(te.event, mf_sim::SchedEvent::Forced { .. })));
        assert!(rec
            .events()
            .any(|te| matches!(te.event, mf_sim::SchedEvent::PoolDecision { picked: None, .. })));
    }

    #[test]
    fn parallel_peak_at_least_na_frontier() {
        // The per-processor peak can never be below the biggest single
        // allocation that processor makes.
        let tree = tree_for(24);
        let cfg = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &cfg);
        let r = run(&tree, &map, &cfg).unwrap();
        let biggest_local = (0..tree.len())
            .filter(|&v| matches!(map.kind[v], NodeKind::Subtree(_) | NodeKind::Type1))
            .map(|v| tree.front_entries(v))
            .max()
            .unwrap_or(0);
        assert!(r.max_peak >= biggest_local);
    }

    #[test]
    fn quiet_fault_model_is_bit_identical() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg0);
        let plain = run(&tree, &map, &cfg0).unwrap();
        let quiet = SolverConfig { fault: Some(mf_sim::FaultModel::quiet(9)), ..cfg0 };
        let r = run(&tree, &map, &quiet).unwrap();
        assert_eq!(r.peaks, plain.peaks);
        assert_eq!(r.makespan, plain.makespan);
        assert_eq!(r.messages, plain.messages);
        assert_eq!(r.dropped_messages, 0);
    }

    #[test]
    fn perturbed_runs_terminate_deterministically_with_same_factors() {
        let tree = tree_for(24);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg0);
        let plain = run(&tree, &map, &cfg0).unwrap();
        let cfg = SolverConfig {
            fault: Some(mf_sim::FaultModel::intensity(13, 3.0)),
            ..cfg0
        };
        let r1 = run(&tree, &map, &cfg).unwrap();
        let r2 = run(&tree, &map, &cfg).unwrap();
        // Same seed: bit-identical.
        assert_eq!(r1.peaks, r2.peaks);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.dropped_messages, r2.dropped_messages);
        // Perturbed but correct: all fronts done, entry conservation, and
        // the factors are the ones the tree defines — identical to the
        // unperturbed run's.
        assert_eq!(r1.nodes_done, r1.total_nodes);
        assert!(r1.final_active.iter().all(|&a| a == 0), "{:?}", r1.final_active);
        assert!(r1.dropped_messages > 0, "intensity 3 should drop something");
        assert_eq!(
            r1.factor_entries.iter().sum::<u64>(),
            plain.factor_entries.iter().sum::<u64>(),
        );
    }

    #[test]
    fn watchdog_reports_stall_when_network_dies() {
        // Kill the network early: some Complete/SlaveTask message is lost
        // and the factorization can never finish — the watchdog must
        // return a diagnosable Stalled error instead of hanging.
        let tree = tree_for(24);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &cfg0);
        let cfg = SolverConfig {
            fault: Some(mf_sim::FaultModel {
                kill_network_after: Some(10),
                ..mf_sim::FaultModel::quiet(1)
            }),
            ..cfg0
        };
        match run(&tree, &map, &cfg) {
            Err(SimError::Stalled { diag }) => {
                assert!(diag.nodes_done < diag.total_nodes);
                assert_eq!(diag.procs.len(), 4);
                assert!(diag.dropped_messages > 0);
                // The snapshot names what every processor held.
                assert!(diag.procs.iter().any(|p| !p.pool.is_empty() || p.active > 0));
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn time_limit_trips_the_runaway_guard() {
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &cfg0);
        let cfg = SolverConfig { time_limit: Some(1), ..cfg0 };
        match run(&tree, &map, &cfg) {
            Err(SimError::TimeLimit { limit, diag }) => {
                assert_eq!(limit, 1);
                assert!(diag.now > 1);
            }
            other => panic!("expected TimeLimit, got {other:?}"),
        }
    }

    #[test]
    fn capped_runs_complete_within_capacity() {
        let tree = tree_for(28);
        for base in [
            SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(8) },
            SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(8) },
        ] {
            let map = compute_mapping(&tree, &base);
            let free = run(&tree, &map, &base).unwrap();
            let cap = free.max_peak + free.max_peak / 5; // 1.2x headroom
            let capped = SolverConfig { capacity: Some(cap), ..base };
            let r = run(&tree, &map, &capped).unwrap();
            assert_eq!(r.nodes_done, r.total_nodes);
            assert!(
                r.peaks.iter().all(|&pk| pk <= cap),
                "peaks {:?} exceed capacity {cap}",
                r.peaks
            );
            assert!(r.final_active.iter().all(|&a| a == 0));
        }
    }

    #[test]
    fn tight_capacity_degrades_time_not_correctness() {
        // A capacity right at the biggest single allocation forces heavy
        // deferral/serialization, but the run still completes.
        let tree = tree_for(24);
        let base = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &base);
        let free = run(&tree, &map, &base).unwrap();
        let floor = (0..tree.len()).map(|v| tree.front_entries(v)).max().unwrap_or(0);
        let capped = SolverConfig { capacity: Some(floor.max(1)), ..base };
        let r = run(&tree, &map, &capped).unwrap();
        assert_eq!(r.nodes_done, r.total_nodes);
        assert!(r.final_active.iter().all(|&a| a == 0));
        assert!(
            r.makespan >= free.makespan,
            "tight cap should not be faster: {} < {}",
            r.makespan,
            free.makespan
        );
    }
}
