//! Typed simulation errors with per-processor diagnostics.
//!
//! The event loop never panics and never hangs: when it detects a
//! no-progress state (drained queue with unfinished fronts), a virtual
//! time runaway, an accounting underflow, or a protocol violation, it
//! returns a [`SimError`] carrying a full [`RunDiagnostics`] snapshot —
//! what every processor was doing, holding, and waiting for — so a failed
//! run is debuggable from the error value alone.

use mf_sim::Time;
use std::fmt;

/// Why a simulated factorization could not complete.
///
/// Every variant boxes its [`RunDiagnostics`] snapshot so the `Err` arm
/// of `Result<_, SimError>` stays pointer-sized on the happy path.
#[derive(Debug, Clone)]
pub enum SimError {
    /// The event queue drained with unfinished fronts and nothing left to
    /// force: a scheduling deadlock (e.g. a dead network swallowed a
    /// control message).
    Stalled {
        /// State of the world at the stall.
        diag: Box<RunDiagnostics>,
    },
    /// Virtual time passed the configured
    /// [`crate::config::SolverConfig::time_limit`] (runaway guard).
    TimeLimit {
        /// The exceeded limit (ticks).
        limit: Time,
        /// State of the world when the limit tripped.
        diag: Box<RunDiagnostics>,
    },
    /// A memory account underflowed: more entries released than held — an
    /// accounting bug, caught in release builds too.
    Accounting {
        /// The underflowing processor.
        proc: usize,
        /// Which account underflowed (`"stack"` or `"fronts"`).
        area: &'static str,
        /// State of the world at the underflow.
        diag: Box<RunDiagnostics>,
    },
    /// The message protocol was violated (e.g. a contribution block for a
    /// node without a parent, or an unknown work key).
    Protocol {
        /// Human-readable description of the violated invariant.
        detail: String,
        /// State of the world at the violation.
        diag: Box<RunDiagnostics>,
    },
    /// The network was silenced by `FaultModel::kill_network_after`: the
    /// run cannot make progress because *every* message — control
    /// included — is being dropped. Distinct from [`SimError::Stalled`]
    /// so a partition is diagnosable as such rather than as a generic
    /// no-progress state.
    Partitioned {
        /// Messages routed before the network died.
        after: u64,
        /// State of the world when the partition starved the run.
        diag: Box<RunDiagnostics>,
    },
}

impl SimError {
    /// The diagnostics snapshot attached to any error variant.
    pub fn diagnostics(&self) -> &RunDiagnostics {
        match self {
            SimError::Stalled { diag }
            | SimError::TimeLimit { diag, .. }
            | SimError::Accounting { diag, .. }
            | SimError::Protocol { diag, .. }
            | SimError::Partitioned { diag, .. } => diag,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled { diag } => {
                write!(
                    f,
                    "no progress possible: event queue drained at t={} with {}/{} fronts done \
                     ({} messages in flight, {} dropped)",
                    diag.now,
                    diag.nodes_done,
                    diag.total_nodes,
                    diag.in_flight,
                    diag.dropped_messages
                )?;
                if !diag.dead.is_empty() {
                    write!(f, "; dead processors: {:?}", diag.dead)?;
                }
                Ok(())
            }
            SimError::TimeLimit { limit, diag } => write!(
                f,
                "virtual time ran past the limit of {} ticks with {}/{} fronts done",
                limit, diag.nodes_done, diag.total_nodes
            ),
            SimError::Accounting { proc, area, diag } => write!(
                f,
                "memory accounting underflow in the {} area of processor {} at t={}",
                area, proc, diag.now
            ),
            SimError::Protocol { detail, diag } => {
                write!(f, "protocol violation at t={}: {}", diag.now, detail)
            }
            SimError::Partitioned { after, diag } => write!(
                f,
                "network partitioned after {} routed messages: {}/{} fronts done at t={}, \
                 {} messages dropped",
                after, diag.nodes_done, diag.total_nodes, diag.now, diag.dropped_messages
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Snapshot of the simulated world, attached to every [`SimError`].
#[derive(Debug, Clone, Default)]
pub struct RunDiagnostics {
    /// Virtual time of the snapshot.
    pub now: Time,
    /// Events delivered before the snapshot.
    pub delivered_events: u64,
    /// Messages still queued (undelivered) in the simulator.
    pub in_flight: usize,
    /// Fronts fully processed.
    pub nodes_done: usize,
    /// Fronts in the tree.
    pub total_nodes: usize,
    /// Messages the fault injector dropped.
    pub dropped_messages: u64,
    /// Processors dead at the snapshot (fail-stopped by the fault
    /// schedule or declared dead by the lease protocol). Empty on runs
    /// without membership faults.
    pub dead: Vec<usize>,
    /// Run-wide metrics accumulated up to the snapshot (traffic by
    /// class, staleness/pool-depth histograms, per-processor busy and
    /// stalled time) — a failed run keeps its observability. Boxed to
    /// keep the error type small.
    pub metrics: Box<mf_sim::RunMetrics>,
    /// Per-processor state.
    pub procs: Vec<ProcDiag>,
}

impl RunDiagnostics {
    /// One-line human summary of the snapshot, shared by every report
    /// binary that prints a failed run.
    pub fn summary_line(&self) -> String {
        let busy = self.procs.iter().filter(|p| p.busy).count();
        let mut line = format!(
            "t={}: {}/{} fronts done, {} events delivered, {} in flight, \
             {} dropped, {}/{} procs busy",
            self.now,
            self.nodes_done,
            self.total_nodes,
            self.delivered_events,
            self.in_flight,
            self.dropped_messages,
            busy,
            self.procs.len()
        );
        if !self.dead.is_empty() {
            line.push_str(&format!(", dead {:?}", self.dead));
        }
        let rec = self.metrics.recovery.summary();
        if !rec.is_empty() {
            line.push_str("; ");
            line.push_str(&rec);
        }
        line
    }
}

/// One processor's state inside a [`RunDiagnostics`] snapshot.
#[derive(Debug, Clone, Default)]
pub struct ProcDiag {
    /// Processor id.
    pub proc: usize,
    /// Whether it was computing.
    pub busy: bool,
    /// Active memory (stack + fronts), in entries.
    pub active: u64,
    /// Stack-only usage, in entries.
    pub stack: u64,
    /// Factor entries stored.
    pub factors: u64,
    /// Ready tasks in the local pool (bottom to top).
    pub pool: Vec<usize>,
    /// Received-but-unstarted slave tasks.
    pub queued_slave_tasks: usize,
    /// Leaf subtree currently in progress, if any.
    pub current_subtree: Option<usize>,
    /// Accounting underflows recorded on this processor.
    pub underflows: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_essentials() {
        let diag = RunDiagnostics {
            now: 123,
            nodes_done: 4,
            total_nodes: 9,
            in_flight: 2,
            ..Default::default()
        };
        let diag = Box::new(diag);
        let s = SimError::Stalled { diag: diag.clone() }.to_string();
        assert!(s.contains("t=123") && s.contains("4/9"), "{s}");
        let s = SimError::TimeLimit { limit: 77, diag: diag.clone() }.to_string();
        assert!(s.contains("77"), "{s}");
        let s = SimError::Accounting { proc: 3, area: "stack", diag: diag.clone() }.to_string();
        assert!(s.contains("processor 3") && s.contains("stack"), "{s}");
        let s = SimError::Partitioned { after: 10, diag: diag.clone() }.to_string();
        assert!(s.contains("partitioned") && s.contains("10 routed"), "{s}");
        let e = SimError::Protocol { detail: "oops".into(), diag };
        assert!(e.to_string().contains("oops"));
        assert_eq!(e.diagnostics().nodes_done, 4);
    }

    #[test]
    fn summary_line_names_dead_procs_and_recovery() {
        let mut diag = RunDiagnostics { dead: vec![3], ..Default::default() };
        diag.metrics.recovery.kills_observed = 1;
        diag.metrics.recovery.nodes_recomputed = 5;
        let line = diag.summary_line();
        assert!(line.contains("dead [3]"), "{line}");
        assert!(line.contains("5 nodes recomputed"), "{line}");
        let quiet = RunDiagnostics::default().summary_line();
        assert!(!quiet.contains("dead") && !quiet.contains("recovery"), "{quiet}");
    }
}
