//! One-call experiment runner.
//!
//! Composes the whole pipeline the paper's experiments need: ordering →
//! symbolic analysis → Liu child ordering → optional static splitting →
//! static mapping → simulated parallel factorization.

use crate::config::SolverConfig;
use crate::error::SimError;
use crate::mapping::compute_mapping;
use crate::parsim;
pub use crate::parsim::RunResult;
use mf_order::OrderingKind;
use mf_sparse::CscMatrix;
use mf_symbolic::seqstack::{apply_liu_order, sequential_peak, AssemblyDiscipline};
use mf_symbolic::{AmalgamationOptions, AssemblyTree};

/// What to factorize: a matrix and the reordering applied to it.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentInput<'a> {
    /// The matrix.
    pub matrix: &'a CscMatrix,
    /// One of the paper's four reorderings.
    pub ordering: OrderingKind,
}

/// Builds the (possibly split) assembly tree for an experiment.
pub fn prepare_tree(input: &ExperimentInput<'_>, cfg: &SolverConfig) -> AssemblyTree {
    let perm = input.ordering.compute(input.matrix);
    let mut s = mf_symbolic::analyze(input.matrix, &perm, &AmalgamationOptions::default());
    apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
    if let Some(threshold) = cfg.split_threshold {
        mf_symbolic::split::split_large_masters(&mut s.tree, threshold);
    }
    s.tree
}

/// Runs one experiment cell: matrix × ordering × configuration.
pub fn run_experiment(
    input: &ExperimentInput<'_>,
    cfg: &SolverConfig,
) -> Result<RunResult, SimError> {
    let tree = prepare_tree(input, cfg);
    run_on_tree(&tree, cfg)
}

/// Runs the simulated factorization on an already prepared tree. A run
/// that cannot complete (deadlock, runaway, accounting bug) returns a
/// typed [`SimError`] with per-processor diagnostics instead of
/// panicking.
pub fn run_on_tree(tree: &AssemblyTree, cfg: &SolverConfig) -> Result<RunResult, SimError> {
    let map = compute_mapping(tree, cfg);
    parsim::run(tree, &map, cfg)
}

/// Sequential stack peak of the same tree (reference point for the
/// memory-scalability discussions of the paper).
pub fn sequential_reference(input: &ExperimentInput<'_>, cfg: &SolverConfig) -> u64 {
    let tree = prepare_tree(input, cfg);
    sequential_peak(&tree, AssemblyDiscipline::FrontThenFree)
}

/// Percentage decrease of `candidate` relative to `baseline`
/// (positive = candidate is better), the quantity of Tables 2, 3, 5.
pub fn percent_decrease(baseline: u64, candidate: u64) -> f64 {
    if baseline == 0 {
        return 0.0;
    }
    100.0 * (baseline as f64 - candidate as f64) / baseline as f64
}

/// Percentage increase of `candidate` over `baseline` (Table 6's
/// "loss of performance").
pub fn percent_increase(baseline: u64, candidate: u64) -> f64 {
    -percent_decrease(baseline, candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::gen::grid::{grid2d, Stencil};

    #[test]
    fn pipeline_runs_end_to_end() {
        let a = grid2d(24, 24, Stencil::Star);
        let input = ExperimentInput { matrix: &a, ordering: OrderingKind::Metis };
        let cfg = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let r = run_experiment(&input, &cfg).unwrap();
        assert!(r.max_peak > 0);
        assert!(r.makespan > 0);
    }

    #[test]
    fn splitting_changes_the_tree() {
        let a = grid2d(28, 28, Stencil::Star);
        let input = ExperimentInput { matrix: &a, ordering: OrderingKind::Amd };
        let base = SolverConfig::mumps_baseline(4);
        let split = SolverConfig { split_threshold: Some(500), ..base.clone() };
        let t1 = prepare_tree(&input, &base);
        let t2 = prepare_tree(&input, &split);
        assert!(t2.len() > t1.len(), "{} !> {}", t2.len(), t1.len());
        for v in 0..t2.len() {
            assert!(t2.master_entries(v) <= 500);
        }
    }

    #[test]
    fn percent_helpers() {
        assert_eq!(percent_decrease(200, 100), 50.0);
        assert_eq!(percent_decrease(100, 110), -10.0);
        assert_eq!(percent_increase(100, 110), 10.0);
        assert_eq!(percent_decrease(0, 5), 0.0);
    }
}
