//! 1-D row blockings of type-2 fronts (Figure 3 of the paper).
//!
//! A type-2 front of order `nfront` with `npiv` pivots is distributed by
//! rows: the master holds the `npiv` fully-summed rows, the slaves share
//! the remaining `nfront - npiv`. For LU the slave rows are full
//! (`nfront` entries each, regular blocking); for LDLᵀ only the lower
//! triangle is stored, so row `r` (0-based within the front) holds
//! `r + 1` entries and equal-work partitions are irregular.

use mf_sparse::Symmetry;

/// Entries held by a slave block spanning front rows
/// `[npiv + offset, npiv + offset + nrows)`.
pub fn slave_block_entries(
    sym: Symmetry,
    nfront: usize,
    npiv: usize,
    offset: usize,
    nrows: usize,
) -> u64 {
    debug_assert!(npiv + offset + nrows <= nfront);
    match sym {
        Symmetry::General => (nrows as u64) * nfront as u64,
        Symmetry::Symmetric => {
            let a = (npiv + offset) as u64;
            let b = a + nrows as u64;
            // Σ_{r=a}^{b-1} (r+1) = tri(b) - tri(a)
            b * (b + 1) / 2 - a * (a + 1) / 2
        }
    }
}

/// Total entries of the slave part of the front (the "surface" Algorithm 1
/// compares its deficits against).
pub fn slave_surface(sym: Symmetry, nfront: usize, npiv: usize) -> u64 {
    slave_block_entries(sym, nfront, npiv, 0, nfront - npiv)
}

/// Splits the slave rows into `k` contiguous blocks of (approximately)
/// equal *entries* — the regular blocking of the unsymmetric case and the
/// irregular one of the symmetric case in Figure 3. Returns
/// `(offset, nrows)` per slave; every slave gets at least one row when
/// `k <= nfront - npiv`.
pub fn equal_entry_blocks(
    sym: Symmetry,
    nfront: usize,
    npiv: usize,
    k: usize,
) -> Vec<(usize, usize)> {
    let total_rows = nfront - npiv;
    assert!(k >= 1 && k <= total_rows, "k={k} rows={total_rows}");
    let surface = slave_surface(sym, nfront, npiv);
    let mut blocks = Vec::with_capacity(k);
    let mut row = 0usize;
    let mut used = 0u64;
    for b in 0..k {
        let remaining_blocks = (k - b) as u64;
        let target = (surface - used).div_ceil(remaining_blocks);
        let mut take = 0usize;
        let mut entries = 0u64;
        while row + take < total_rows && (entries < target || take == 0) {
            // Never leave fewer rows than blocks still to fill.
            if total_rows - (row + take) < k - b {
                break;
            }
            entries += slave_block_entries(sym, nfront, npiv, row + take, 1);
            take += 1;
        }
        if take == 0 {
            take = 1;
            entries = slave_block_entries(sym, nfront, npiv, row, 1);
        }
        blocks.push((row, take));
        row += take;
        used += entries;
    }
    // Any leftover rows go to the last block.
    if row < total_rows {
        if let Some((off, n)) = blocks.pop() {
            blocks.push((off, n + (total_rows - row)));
        }
    }
    blocks
}

/// Converts a per-slave *entry budget* into contiguous row blocks: slave
/// `j` receives rows until its budget is exhausted (at least one row).
/// Leftover rows are spread round-robin; used by Algorithm 1 which
/// reasons in entries (`(MEM[i]-MEM[j])/nfront` rows).
pub fn blocks_from_entry_budgets(
    sym: Symmetry,
    nfront: usize,
    npiv: usize,
    budgets: &[u64],
) -> Vec<(usize, usize)> {
    let total_rows = nfront - npiv;
    let k = budgets.len();
    assert!(k >= 1 && k <= total_rows);
    // First pass: rows per slave from the budget (0 allowed here).
    let mut rows = vec![0usize; k];
    let mut row = 0usize;
    for (j, &budget) in budgets.iter().enumerate() {
        let mut entries = 0u64;
        while row < total_rows && entries < budget {
            if total_rows - row < k - j {
                break; // keep one row available per remaining slave
            }
            entries += slave_block_entries(sym, nfront, npiv, row, 1);
            row += 1;
            rows[j] += 1;
        }
    }
    // Spread remaining rows as equally as possible (the "assign the
    // remaining rows equitably" step of Algorithm 1).
    while row < total_rows {
        let Some(j) = (0..k).min_by_key(|&j| rows[j]) else { break };
        rows[j] += 1;
        row += 1;
    }
    // Guarantee ≥1 row each by stealing from the largest.
    while let Some(j0) = (0..k).find(|&j| rows[j] == 0) {
        let Some(jmax) = (0..k).max_by_key(|&j| rows[j]) else { break };
        debug_assert!(rows[jmax] > 1);
        rows[jmax] -= 1;
        rows[j0] += 1;
    }
    let mut blocks = Vec::with_capacity(k);
    let mut off = 0usize;
    for &r in &rows {
        blocks.push((off, r));
        off += r;
    }
    debug_assert_eq!(off, total_rows);
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsym_blocks_are_regular() {
        let blocks = equal_entry_blocks(Symmetry::General, 100, 20, 4);
        let rows: Vec<usize> = blocks.iter().map(|&(_, n)| n).collect();
        assert_eq!(rows.iter().sum::<usize>(), 80);
        assert!(rows.iter().all(|&r| r == 20), "{rows:?}");
    }

    #[test]
    fn sym_blocks_are_irregular_but_balanced() {
        let blocks = equal_entry_blocks(Symmetry::Symmetric, 100, 20, 4);
        let rows: Vec<usize> = blocks.iter().map(|&(_, n)| n).collect();
        assert_eq!(rows.iter().sum::<usize>(), 80);
        // Early blocks (top of the triangle, short rows) must take more
        // rows than late blocks — Figure 3's irregular symmetric blocking.
        assert!(rows.first().unwrap() > rows.last().unwrap(), "{rows:?}");
        // Entries roughly equal (within one row of the widest block).
        let entries: Vec<u64> = blocks
            .iter()
            .map(|&(o, n)| slave_block_entries(Symmetry::Symmetric, 100, 20, o, n))
            .collect();
        let (mn, mx) = (entries.iter().min().unwrap(), entries.iter().max().unwrap());
        // Rounding to whole rows costs at most ~2 of the widest rows.
        assert!(mx - mn <= 200, "{entries:?}");
    }

    #[test]
    fn block_entries_sum_to_surface() {
        for sym in [Symmetry::General, Symmetry::Symmetric] {
            let blocks = equal_entry_blocks(sym, 57, 13, 5);
            let total: u64 =
                blocks.iter().map(|&(o, n)| slave_block_entries(sym, 57, 13, o, n)).sum();
            assert_eq!(total, slave_surface(sym, 57, 13));
        }
    }

    #[test]
    fn budget_blocks_cover_all_rows_and_respect_minimum() {
        let blocks = blocks_from_entry_budgets(Symmetry::General, 50, 10, &[0, 0, 1200]);
        let total: usize = blocks.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 40);
        assert!(blocks.iter().all(|&(_, n)| n >= 1), "{blocks:?}");
        // Third slave asked for 1200 entries = 24 rows of width 50.
        assert!(blocks[2].1 >= 20, "{blocks:?}");
    }

    #[test]
    fn budget_blocks_are_contiguous() {
        let blocks = blocks_from_entry_budgets(Symmetry::Symmetric, 30, 5, &[100, 50, 0]);
        let mut expect = 0;
        for &(o, n) in &blocks {
            assert_eq!(o, expect);
            expect += n;
        }
        assert_eq!(expect, 25);
    }

    #[test]
    fn single_slave_takes_everything() {
        let blocks = equal_entry_blocks(Symmetry::General, 31, 7, 1);
        assert_eq!(blocks, vec![(0, 24)]);
    }

    #[test]
    fn front_equals_master_plus_surface() {
        // The 1-D distribution partitions the front exactly: the master
        // holds the pivot rows, the slaves everything else.
        for sym in [Symmetry::General, Symmetry::Symmetric] {
            let (f, p) = (57u64, 13u64);
            let front = match sym {
                Symmetry::General => f * f,
                Symmetry::Symmetric => f * (f + 1) / 2,
            };
            let master = match sym {
                Symmetry::General => p * f,
                Symmetry::Symmetric => p * (p + 1) / 2,
            };
            assert_eq!(slave_surface(sym, 57, 13), front - master);
        }
    }
}
