//! Static phase of the scheduler (Section 3).
//!
//! Before the factorization starts, MUMPS decides: (a) the *leaf
//! subtrees*, sets of type-1 nodes entirely assigned to one processor,
//! found with the Geist–Ng top-down algorithm and mapped to balance
//! computational work; (b) the parallelism *type* of every node above the
//! subtrees (1 = sequential, 2 = 1-D parallel front, 3 = 2-D root); and
//! (c) the *master* processor of every upper node, balancing the memory
//! of the corresponding factors.

use crate::config::{SolverConfig, SubtreeOrder};
use mf_symbolic::seqstack::{subtree_peaks, AssemblyDiscipline};
use mf_symbolic::AssemblyTree;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Parallelism type of a node (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Type-1 node inside a leaf subtree (the subtree id).
    Subtree(usize),
    /// Type-1 node in the upper part of the tree (sequential).
    Type1,
    /// Type-2 node: 1-D parallel front (master + dynamic slaves).
    Type2,
    /// Type-3 node: 2-D root processed by all processors.
    Type3,
}

/// Output of the static phase.
#[derive(Debug, Clone)]
pub struct StaticMapping {
    /// Parallelism type per node.
    pub kind: Vec<NodeKind>,
    /// Executing processor per node (master for type 2/3).
    pub owner: Vec<usize>,
    /// Subtree id per node (`None` above the subtrees).
    pub subtree_of: Vec<Option<usize>>,
    /// Root node of every subtree.
    pub subtree_roots: Vec<usize>,
    /// Processor of every subtree.
    pub subtree_proc: Vec<usize>,
    /// Sequential stack peak of every subtree (the value broadcast by the
    /// Section 5.1 mechanism).
    pub subtree_peak: Vec<u64>,
    /// Initial pool content per processor: the leaf tasks, subtree by
    /// subtree, *bottom to top of the stack* (the task to run first is
    /// last, since the pool pops from the back).
    pub initial_pool: Vec<Vec<usize>>,
}

/// Computes the full static mapping.
pub fn compute_mapping(tree: &AssemblyTree, cfg: &SolverConfig) -> StaticMapping {
    let n = tree.len();
    let flops: Vec<u64> = (0..n).map(|v| tree.flops(v)).collect();
    let subtree_flops = tree.subtree_sum(|v| flops[v]);

    // ---- Geist-Ng: peel roots until enough, balanced, subtrees. ----
    let target = (cfg.subtrees_per_proc * cfg.nprocs).max(1);
    let total: u64 = tree.roots().iter().map(|&r| subtree_flops[r]).sum();
    let balance_cap = (total / cfg.nprocs.max(1) as u64).max(1);
    // Memory-aware subtree definition (paper's conclusion): also split
    // candidates whose sequential stack peak is too large, since "subtree
    // peaks are the limiting factor of memory scalability".
    let all_peaks = subtree_peaks(tree, AssemblyDiscipline::FrontThenFree);
    let peak_cap: Option<u64> = cfg.subtree_peak_factor.map(|f| {
        let seq: u64 = tree.roots().iter().map(|&r| all_peaks[r]).max().unwrap_or(0);
        ((seq as f64 * f / cfg.nprocs.max(1) as f64) as u64).max(1)
    });
    let mut heap: BinaryHeap<(u64, usize)> =
        tree.roots().into_iter().map(|r| (subtree_flops[r], r)).collect();
    let mut atomic: Vec<usize> = Vec::new(); // leaves that cannot be split further
    let mut oversized: Vec<(u64, usize)> = Vec::new(); // peak-capped re-insertions
    while let Some(&(fl, v)) = heap.peek() {
        let enough = heap.len() + atomic.len() + oversized.len() >= target;
        let too_fat = peak_cap.is_some_and(|cap| all_peaks[v] > cap);
        if enough && fl <= balance_cap && !too_fat {
            break;
        }
        heap.pop();
        if tree.nodes[v].children.is_empty() {
            atomic.push(v);
        } else if enough && fl <= balance_cap && too_fat {
            // Split for memory only: replace by children once, but keep
            // scanning the rest of the heap for other fat subtrees.
            for &c in &tree.nodes[v].children {
                let c_fat = peak_cap.is_some_and(|cap| all_peaks[c] > cap);
                if c_fat && !tree.nodes[c].children.is_empty() {
                    heap.push((subtree_flops[c], c));
                } else {
                    oversized.push((subtree_flops[c], c));
                }
            }
        } else {
            for &c in &tree.nodes[v].children {
                heap.push((subtree_flops[c], c));
            }
        }
    }
    let mut subtree_roots: Vec<usize> = heap.into_iter().map(|(_, v)| v).collect();
    subtree_roots.extend(atomic);
    subtree_roots.extend(oversized.into_iter().map(|(_, v)| v));
    subtree_roots.sort_unstable(); // deterministic order
    let nsub = subtree_roots.len();

    // ---- LPT subtree -> processor mapping. ----
    let mut by_load: Vec<usize> = (0..nsub).collect();
    by_load.sort_by_key(|&s| (Reverse(subtree_flops[subtree_roots[s]]), s));
    let mut proc_load = vec![0u64; cfg.nprocs];
    let mut subtree_proc = vec![0usize; nsub];
    for &s in &by_load {
        let p = (0..cfg.nprocs).min_by_key(|&p| (proc_load[p], p)).unwrap_or(0);
        subtree_proc[s] = p;
        proc_load[p] += subtree_flops[subtree_roots[s]];
    }

    // ---- Mark subtree membership. ----
    let mut subtree_of: Vec<Option<usize>> = vec![None; n];
    for (s, &r) in subtree_roots.iter().enumerate() {
        let mut stack = vec![r];
        while let Some(v) = stack.pop() {
            subtree_of[v] = Some(s);
            stack.extend(tree.nodes[v].children.iter().copied());
        }
    }

    // ---- Classify upper nodes. ----
    let mut kind: Vec<NodeKind> = vec![NodeKind::Type1; n];
    for v in 0..n {
        kind[v] = match subtree_of[v] {
            Some(s) => NodeKind::Subtree(s),
            None => {
                let nd = &tree.nodes[v];
                let slave_rows = nd.nfront - nd.npiv;
                if nd.parent.is_none() && nd.nfront >= cfg.type3_front_min && cfg.nprocs > 1 {
                    NodeKind::Type3
                } else if nd.nfront >= cfg.type2_front_min
                    && slave_rows >= cfg.min_rows_per_slave
                    && cfg.nprocs > 1
                {
                    NodeKind::Type2
                } else {
                    NodeKind::Type1
                }
            }
        };
    }

    // ---- Owners: subtree nodes follow their subtree; upper nodes are
    // mapped greedily to balance the memory of their factors. ----
    let mut owner = vec![0usize; n];
    let mut factor_mem = vec![0u64; cfg.nprocs];
    for v in tree.topo_order() {
        match kind[v] {
            NodeKind::Subtree(s) => {
                owner[v] = subtree_proc[s];
                factor_mem[owner[v]] += tree.factor_entries(v);
            }
            NodeKind::Type1 => {
                let p = (0..cfg.nprocs).min_by_key(|&p| (factor_mem[p], p)).unwrap_or(0);
                owner[v] = p;
                factor_mem[p] += tree.factor_entries(v);
            }
            NodeKind::Type2 => {
                let p = (0..cfg.nprocs).min_by_key(|&p| (factor_mem[p], p)).unwrap_or(0);
                owner[v] = p;
                factor_mem[p] += tree.master_entries(v);
            }
            NodeKind::Type3 => {
                let p = (0..cfg.nprocs).min_by_key(|&p| (factor_mem[p], p)).unwrap_or(0);
                owner[v] = p;
                factor_mem[p] += tree.factor_entries(v) / cfg.nprocs as u64;
            }
        }
    }

    // ---- Subtree peaks (the Section 5.1 broadcast values). ----
    let subtree_peak: Vec<u64> = subtree_roots.iter().map(|&r| all_peaks[r]).collect();

    // ---- Initial pools: leaves, grouped subtree by subtree. ----
    // The pool pops from the back, so the *first* task to run must be
    // pushed last: reverse the natural (subtree-major, leaves-in-DFS)
    // order. The subtree sequence itself follows cfg.subtree_order
    // (reference [11]: the treatment order of subtrees matters).
    let mut subtree_seq: Vec<usize> = (0..nsub).collect();
    match cfg.subtree_order {
        SubtreeOrder::AsMapped => {}
        SubtreeOrder::PeakDescending => {
            subtree_seq.sort_by_key(|&s| (Reverse(all_peaks[subtree_roots[s]]), s));
        }
        SubtreeOrder::PeakAscending => {
            subtree_seq.sort_by_key(|&s| (all_peaks[subtree_roots[s]], s));
        }
    }
    let mut initial_pool: Vec<Vec<usize>> = vec![Vec::new(); cfg.nprocs];
    for &s in &subtree_seq {
        let r = subtree_roots[s];
        let p = subtree_proc[s];
        // Leaves of subtree s in DFS (tree child order = Liu order).
        let mut leaves = Vec::new();
        let mut stack = vec![r];
        while let Some(v) = stack.pop() {
            if tree.nodes[v].children.is_empty() {
                leaves.push(v);
            } else {
                // push children reversed so DFS visits them in order
                for &c in tree.nodes[v].children.iter().rev() {
                    stack.push(c);
                }
            }
        }
        // leaves currently in DFS order; queue them so the first DFS leaf
        // runs first once everything is reversed at the end.
        initial_pool[p].extend(leaves);
    }
    for pool in &mut initial_pool {
        pool.reverse();
    }

    StaticMapping {
        kind,
        owner,
        subtree_of,
        subtree_roots,
        subtree_proc,
        subtree_peak,
        initial_pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_order::OrderingKind;
    use mf_sparse::gen::grid::{grid2d, Stencil};
    use mf_symbolic::AmalgamationOptions;

    fn sample_tree(nx: usize) -> AssemblyTree {
        let a = grid2d(nx, nx, Stencil::Star);
        let p = OrderingKind::Metis.compute(&a);
        mf_symbolic::analyze(&a, &p, &AmalgamationOptions::default()).tree
    }

    fn cfg(nprocs: usize) -> SolverConfig {
        SolverConfig { nprocs, type2_front_min: 20, ..SolverConfig::mumps_baseline(nprocs) }
    }

    #[test]
    fn every_node_is_classified_and_owned() {
        let tree = sample_tree(20);
        let m = compute_mapping(&tree, &cfg(4));
        assert_eq!(m.kind.len(), tree.len());
        assert!(m.owner.iter().all(|&p| p < 4));
    }

    #[test]
    fn subtrees_cover_all_leaves() {
        let tree = sample_tree(20);
        let m = compute_mapping(&tree, &cfg(4));
        for l in tree.leaves() {
            assert!(m.subtree_of[l].is_some(), "leaf {l} outside any subtree");
        }
    }

    #[test]
    fn subtree_nodes_share_their_subtree_processor() {
        let tree = sample_tree(20);
        let m = compute_mapping(&tree, &cfg(4));
        for v in 0..tree.len() {
            if let Some(s) = m.subtree_of[v] {
                assert_eq!(m.owner[v], m.subtree_proc[s]);
                assert_eq!(m.kind[v], NodeKind::Subtree(s));
            }
        }
    }

    #[test]
    fn upper_nodes_are_ancestors_of_subtrees() {
        let tree = sample_tree(20);
        let m = compute_mapping(&tree, &cfg(4));
        // every upper node has at least one descendant subtree root among
        // its children-closure (equivalently: no upper node is a leaf).
        for v in 0..tree.len() {
            if m.subtree_of[v].is_none() {
                assert!(!tree.nodes[v].children.is_empty(), "upper leaf {v}");
            }
        }
    }

    #[test]
    fn enough_subtrees_for_the_processors() {
        let tree = sample_tree(28);
        let c = cfg(4);
        let m = compute_mapping(&tree, &c);
        assert!(
            m.subtree_roots.len() >= c.nprocs,
            "only {} subtrees for {} procs",
            m.subtree_roots.len(),
            c.nprocs
        );
        // All processors got at least one subtree.
        let mut used: Vec<bool> = vec![false; c.nprocs];
        for &p in &m.subtree_proc {
            used[p] = true;
        }
        assert!(used.iter().all(|&u| u));
    }

    #[test]
    fn subtree_load_is_roughly_balanced() {
        let tree = sample_tree(28);
        let c = cfg(4);
        let m = compute_mapping(&tree, &c);
        let sub_flops = tree.subtree_sum(|v| tree.flops(v));
        let mut load = vec![0u64; c.nprocs];
        for (s, &r) in m.subtree_roots.iter().enumerate() {
            load[m.subtree_proc[s]] += sub_flops[r];
        }
        let (mn, mx) = (*load.iter().min().unwrap(), *load.iter().max().unwrap());
        assert!(mx < 3 * mn.max(1), "imbalanced subtree loads: {load:?}");
    }

    #[test]
    fn big_upper_fronts_are_type2() {
        let tree = sample_tree(28);
        let m = compute_mapping(&tree, &cfg(4));
        let t2 = (0..tree.len()).filter(|&v| m.kind[v] == NodeKind::Type2).count();
        assert!(t2 > 0, "no type-2 node found");
    }

    #[test]
    fn single_proc_mapping_has_no_type2() {
        let tree = sample_tree(16);
        let m = compute_mapping(&tree, &cfg(1));
        assert!(m.kind.iter().all(|k| !matches!(k, NodeKind::Type2 | NodeKind::Type3)));
    }

    #[test]
    fn initial_pool_pops_first_dfs_leaf_first() {
        let tree = sample_tree(20);
        let m = compute_mapping(&tree, &cfg(4));
        for p in 0..4 {
            if let Some(&top) = m.initial_pool[p].last() {
                // The task popped first must be a leaf of a subtree on p.
                assert!(tree.nodes[top].children.is_empty());
                assert_eq!(m.owner[top], p);
            }
        }
    }

    #[test]
    fn subtree_order_policies_reorder_pools() {
        use crate::config::SubtreeOrder;
        let tree = sample_tree(24);
        let desc = compute_mapping(
            &tree,
            &SolverConfig { subtree_order: SubtreeOrder::PeakDescending, ..cfg(2) },
        );
        let asc = compute_mapping(
            &tree,
            &SolverConfig { subtree_order: SubtreeOrder::PeakAscending, ..cfg(2) },
        );
        // Same subtrees, same owners — only the pool order differs.
        assert_eq!(desc.subtree_roots, asc.subtree_roots);
        assert_eq!(desc.subtree_proc, asc.subtree_proc);
        // First task popped under Descending belongs to the proc's
        // highest-peak subtree, under Ascending to its lowest-peak one.
        for p in 0..2 {
            let peak_of = |m: &StaticMapping, pool: &Vec<usize>| -> Option<u64> {
                pool.last().map(|&v| m.subtree_peak[m.subtree_of[v].unwrap()])
            };
            let subs: Vec<u64> = (0..desc.subtree_roots.len())
                .filter(|&s| desc.subtree_proc[s] == p)
                .map(|s| desc.subtree_peak[s])
                .collect();
            if subs.len() >= 2 {
                assert_eq!(peak_of(&desc, &desc.initial_pool[p]), subs.iter().copied().max());
                assert_eq!(peak_of(&asc, &asc.initial_pool[p]), subs.iter().copied().min());
            }
        }
    }

    #[test]
    fn memory_aware_subtrees_split_fat_peaks() {
        let tree = sample_tree(28);
        let plain = compute_mapping(&tree, &cfg(4));
        let aware =
            compute_mapping(&tree, &SolverConfig { subtree_peak_factor: Some(0.5), ..cfg(4) });
        // The memory-aware definition can only refine (more, smaller
        // subtrees) and must lower the largest subtree peak.
        assert!(aware.subtree_roots.len() >= plain.subtree_roots.len());
        let max_peak = |m: &StaticMapping| m.subtree_peak.iter().copied().max().unwrap_or(0);
        assert!(
            max_peak(&aware) <= max_peak(&plain),
            "{} !<= {}",
            max_peak(&aware),
            max_peak(&plain)
        );
        // Still a valid mapping: every leaf covered.
        for l in tree.leaves() {
            assert!(aware.subtree_of[l].is_some());
        }
    }

    #[test]
    fn pools_partition_the_leaves() {
        let tree = sample_tree(20);
        let m = compute_mapping(&tree, &cfg(4));
        let mut all: Vec<usize> = m.initial_pool.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut leaves = tree.leaves();
        leaves.sort_unstable();
        assert_eq!(all, leaves);
    }
}
