//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment cannot reach crates.io; this shim provides the
//! poison-free `lock()` signatures the workspace relies on. Poisoned
//! locks are recovered transparently, matching parking_lot's semantics
//! of never poisoning.

use std::sync;

/// Mutual exclusion primitive with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}
