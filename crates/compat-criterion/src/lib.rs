//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment cannot reach crates.io, so the workspace ships
//! this minimal harness: same macros and builder surface, a simple
//! adaptive timer underneath (warm up ~100 ms, then measure enough
//! iterations to fill ~300 ms, report the mean). Good enough to compare
//! kernels and catch order-of-magnitude regressions; not a statistics
//! suite.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(100);
const MEASURE: Duration = Duration::from_millis(300);

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// How `iter_batched` sizes its batches (accepted, not interpreted).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only identifier.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per = start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let target = ((MEASURE.as_nanos() as f64 / per.max(1.0)) as u64).clamp(1, 10_000_000);
        let t0 = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.ns_per_iter = t0.elapsed().as_nanos() as f64 / target as f64;
        self.iters = target;
    }

    /// Times `routine` over inputs produced by `setup`; only the routine
    /// is measured.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // Warm up and estimate.
        let mut spent = Duration::ZERO;
        let mut warm_iters = 0u64;
        while spent < WARMUP {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            warm_iters += 1;
        }
        let per = spent.as_nanos() as f64 / warm_iters as f64;
        let target = ((MEASURE.as_nanos() as f64 / per.max(1.0)) as u64).clamp(1, 1_000_000);
        let mut total = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.ns_per_iter = total.as_nanos() as f64 / target as f64;
        self.iters = target;
    }

    /// Like `iter_batched`, with a reusable input reference.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        size: BatchSize,
    ) {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

fn run_one(full_name: &str, f: impl FnOnce(&mut Bencher), throughput: Option<Throughput>) {
    let mut b = Bencher { ns_per_iter: 0.0, iters: 0 };
    f(&mut b);
    let mut line =
        format!("{full_name:<50} time: {:>12}   ({} iters)", fmt_time(b.ns_per_iter), b.iters);
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if b.ns_per_iter > 0.0 && count > 0 {
            let per_sec = count as f64 / (b.ns_per_iter * 1e-9);
            line.push_str(&format!("   thrpt: {per_sec:.3e} {unit}/s"));
        }
    }
    println!("{line}");
}

impl Criterion {
    /// Accepts (and ignores) CLI configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&id.into_id(), f, None);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name} --");
        BenchmarkGroup { _parent: self, name, throughput: None }
    }

    /// Final reporting hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepts (and ignores) a sample-size hint.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepts (and ignores) a measurement-time hint.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_id()), f, self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input), self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("amd").to_string(), "amd");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(12.0), "12.0 ns");
        assert_eq!(fmt_time(1_500.0), "1.50 µs");
        assert_eq!(fmt_time(2_500_000.0), "2.50 ms");
    }
}
