//! Offline, bit-compatible subset of the `rand` 0.8 API.
//!
//! The build environment cannot reach crates.io, so the workspace ships
//! this re-implementation of exactly the surface it uses. The output
//! streams match rand 0.8.5 bit for bit for that surface (verified by the
//! pinned generator snapshots in `tests/regression_snapshots.rs`):
//!
//! * [`SeedableRng::seed_from_u64`] — PCG32-based seed expansion, as in
//!   `rand_core` 0.6;
//! * [`rngs::SmallRng`] — xoshiro256++ (the 64-bit `SmallRng` algorithm);
//! * [`Rng::gen`]`::<f64>()` — the 53-bit `Standard` distribution;
//! * [`Rng::gen_range`] on integer ranges — single-sample uniform via
//!   widening multiply with rejection, as in `rand` 0.8's
//!   `UniformInt::sample_single_inclusive`.

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes (little-endian word stream).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 stream used by
    /// `rand_core` 0.6, so seeded runs match upstream `rand` exactly.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let p = pcg32(&mut state);
            chunk.copy_from_slice(&p[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the `Standard` distribution (subset).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: sign test on a u32 (most significant bit).
        (rng.next_u32() as i32) < 0
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit standard distribution in [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / ((1u32 << 24) as f32))
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                sample_inclusive_u64(self.start as u64, self.end as u64 - 1, rng) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                sample_inclusive_u64(*self.start() as u64, *self.end() as u64, rng) as $ty
            }
        }
    )*};
}

uniform_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// `rand` 0.8's `UniformInt::sample_single_inclusive` for 64-bit types:
/// widening multiply with a leading-zeros rejection zone.
fn sample_inclusive_u64<R: RngCore + ?Sized>(low: u64, high: u64, rng: &mut R) -> u64 {
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let wide = (v as u128) * (range as u128);
        let (hi, lo) = ((wide >> 64) as u64, wide as u64);
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples from the `Standard` distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The 64-bit `SmallRng`: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            if s == [0; 4] {
                // All-zero state is a fixed point of xoshiro; remap it the
                // way rand_xoshiro does.
                return Self::seed_from_u64(0);
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_stream_is_stable() {
        // Pinned against rand 0.8.5 SmallRng::seed_from_u64(42) on x86_64.
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1u64..=5);
            assert!((1..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
