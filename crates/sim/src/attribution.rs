//! Peak attribution: replay a recording's memory events to recover the
//! exact instant and live-front composition of each processor's
//! active-memory peak.
//!
//! This is the analysis the memory-bounded tree-scheduling literature
//! uses to diagnose schedules: a peak is explained by the set of fronts
//! and stacked contribution blocks live at the peak instant. The replay
//! mirrors `ProcMemory` exactly — active = front area + CB stack,
//! strict-`>` peak update, saturating frees — so for a complete
//! recording ([`Recording::dropped`] == 0) the reported composition sums
//! bit-exactly to the solver's `active_peak`.

use crate::engine::Time;
use crate::recorder::{EventRef, MemArea, Recording};

/// One live allocation at a peak instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveItem {
    /// Owning node.
    pub node: usize,
    /// Which area it occupies.
    pub area: MemArea,
    /// Live entries.
    pub entries: u64,
}

/// A processor's reconstructed active-memory peak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeakAttribution {
    /// The processor.
    pub proc: usize,
    /// Instant the peak was first reached.
    pub at: Time,
    /// Peak active memory (entries). Sums over `composition`.
    pub peak: u64,
    /// Live allocations at the peak instant, ordered by node then area.
    pub composition: Vec<LiveItem>,
}

/// Per-processor live state during a replay.
struct Replay {
    /// Live (node, area) → entries, insertion-ordered.
    live: Vec<LiveItem>,
    active: u64,
}

impl Replay {
    fn new() -> Self {
        Replay { live: Vec::new(), active: 0 }
    }

    fn alloc(&mut self, node: usize, area: MemArea, entries: u64) {
        self.active += entries;
        if let Some(it) = self.live.iter_mut().find(|it| it.node == node && it.area == area) {
            it.entries += entries;
        } else {
            self.live.push(LiveItem { node, area, entries });
        }
    }

    fn free(&mut self, node: usize, area: MemArea, entries: u64) {
        // Saturating, mirroring ProcMemory's underflow tolerance.
        self.active = self.active.saturating_sub(entries);
        if let Some(pos) = self.live.iter().position(|it| it.node == node && it.area == area) {
            let it = &mut self.live[pos];
            it.entries = it.entries.saturating_sub(entries);
            if it.entries == 0 {
                self.live.remove(pos);
            }
        }
    }
}

/// Replays `rec` and returns each processor's peak attribution.
///
/// Processors with no recorded memory traffic report a zero peak with an
/// empty composition. The peak instant is the *first* time the maximum
/// is reached (strict-`>` update, matching `ProcMemory`).
pub fn attribute_peaks(nprocs: usize, rec: &Recording) -> Vec<PeakAttribution> {
    // Pass 1: find each processor's peak value and the index of the
    // event that first set it.
    let mut active = vec![0u64; nprocs];
    let mut peak = vec![0u64; nprocs];
    let mut peak_idx = vec![usize::MAX; nprocs];
    let mut peak_at = vec![0 as Time; nprocs];
    for (idx, te) in rec.events().enumerate() {
        match te.ev {
            EventRef::MemAlloc { proc, entries, .. } => {
                active[proc] += entries;
                if active[proc] > peak[proc] {
                    peak[proc] = active[proc];
                    peak_idx[proc] = idx;
                    peak_at[proc] = te.at;
                }
            }
            EventRef::MemFree { proc, entries, .. } => {
                active[proc] = active[proc].saturating_sub(entries);
            }
            _ => {}
        }
    }

    // Pass 2: replay live compositions, snapshotting each processor at
    // its peak-setting event.
    let mut replays: Vec<Replay> = (0..nprocs).map(|_| Replay::new()).collect();
    let mut out: Vec<PeakAttribution> = (0..nprocs)
        .map(|p| PeakAttribution { proc: p, at: 0, peak: 0, composition: Vec::new() })
        .collect();
    for (idx, te) in rec.events().enumerate() {
        match te.ev {
            EventRef::MemAlloc { proc, node, area, entries } => {
                replays[proc].alloc(node, area, entries);
                if idx == peak_idx[proc] {
                    let mut comp = replays[proc].live.clone();
                    comp.sort_by_key(|it| (it.node, it.area));
                    out[proc] = PeakAttribution {
                        proc,
                        at: peak_at[proc],
                        peak: peak[proc],
                        composition: comp,
                    };
                }
            }
            EventRef::MemFree { proc, node, area, entries } => {
                replays[proc].free(node, area, entries);
            }
            _ => {}
        }
    }
    out
}

/// Active memory per processor after replaying the first `idx` events
/// (i.e. the state an event at stream position `idx` observed).
///
/// `explain` uses this to contrast what a master *believed* about its
/// peers (the recorded metric vector) with the ground truth at the same
/// instant.
pub fn active_before(nprocs: usize, rec: &Recording, idx: usize) -> Vec<u64> {
    let mut active = vec![0u64; nprocs];
    for te in rec.events().take(idx) {
        match te.ev {
            EventRef::MemAlloc { proc, entries, .. } => active[proc] += entries,
            EventRef::MemFree { proc, entries, .. } => {
                active[proc] = active[proc].saturating_sub(entries)
            }
            _ => {}
        }
    }
    active
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::SchedEvent;

    fn alloc(proc: usize, node: usize, area: MemArea, entries: u64) -> SchedEvent {
        SchedEvent::MemAlloc { proc, node, area, entries }
    }
    fn free(proc: usize, node: usize, area: MemArea, entries: u64) -> SchedEvent {
        SchedEvent::MemFree { proc, node, area, entries }
    }

    #[test]
    fn composition_sums_to_peak() {
        let mut rec = Recording::new(None);
        rec.record(1, alloc(0, 1, MemArea::Front, 100));
        rec.record(2, alloc(0, 2, MemArea::Stack, 50));
        rec.record(3, alloc(0, 3, MemArea::Front, 25)); // peak = 175 here
        rec.record(4, free(0, 1, MemArea::Front, 100));
        rec.record(5, alloc(0, 4, MemArea::Front, 60)); // 135 < 175

        let att = attribute_peaks(1, &rec);
        assert_eq!(att[0].peak, 175);
        assert_eq!(att[0].at, 3);
        let sum: u64 = att[0].composition.iter().map(|it| it.entries).sum();
        assert_eq!(sum, att[0].peak);
        assert_eq!(att[0].composition.len(), 3);
    }

    #[test]
    fn first_peak_instant_wins() {
        let mut rec = Recording::new(None);
        rec.record(1, alloc(0, 1, MemArea::Front, 10));
        rec.record(2, free(0, 1, MemArea::Front, 10));
        rec.record(9, alloc(0, 2, MemArea::Front, 10)); // equals, not exceeds
        let att = attribute_peaks(1, &rec);
        assert_eq!(att[0].peak, 10);
        assert_eq!(att[0].at, 1, "strict-> keeps the first instant");
        assert_eq!(
            att[0].composition,
            vec![LiveItem { node: 1, area: MemArea::Front, entries: 10 }]
        );
    }

    #[test]
    fn idle_processor_reports_zero() {
        let mut rec = Recording::new(None);
        rec.record(1, alloc(0, 1, MemArea::Front, 10));
        let att = attribute_peaks(2, &rec);
        assert_eq!(att[1].peak, 0);
        assert!(att[1].composition.is_empty());
    }

    #[test]
    fn active_before_reconstructs_ground_truth() {
        let mut rec = Recording::new(None);
        rec.record(1, alloc(0, 1, MemArea::Front, 10));
        rec.record(2, alloc(1, 2, MemArea::Front, 7));
        rec.record(3, free(0, 1, MemArea::Front, 4));
        assert_eq!(active_before(2, &rec, 0), vec![0, 0]);
        assert_eq!(active_before(2, &rec, 2), vec![10, 7]);
        assert_eq!(active_before(2, &rec, 3), vec![6, 7]);
    }
}
