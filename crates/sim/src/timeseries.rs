//! Time-resolved telemetry series sampled by the scheduler core.
//!
//! The PR 3 metrics registry folds a run to one end-of-run snapshot;
//! this module keeps the *trajectory*. A sampling timer in `mf-core`
//! (`TIMER_SAMPLE`, armed only when the solver configuration sets a
//! sampling interval) emits one read-only snapshot per processor per
//! simulated-time interval, and the driver appends it here stamped
//! with the virtual time and the run-wide traffic counters. Because
//! the snapshot rides the same typed timer protocol as the recovery
//! heartbeat/lease timers, both backends produce bit-identical series
//! and sampling provably never perturbs the schedule (the drivers
//! assert this in their invariance tests).
//!
//! Storage is columnar per processor — one preallocated ring buffer
//! per column — so a sample costs a handful of stores and a bounded
//! black box evicts (and counts) old rows instead of growing without
//! limit.
//!
//! Consumers: [`RunTimeseries::write_csv`] and
//! [`RunTimeseries::write_jsonl`] for plotting, \
//! [`RunTimeseries::write_prometheus`] for scrape-style text
//! exposition, and the Perfetto exporter's sampled counter tracks.

use crate::engine::Time;
use std::io::{self, Write};

/// Default per-processor ring capacity used by the drivers: large
/// enough to retain the full trajectory of every paper-scale run at
/// the default interval, small enough to bound a long-running
/// service's footprint.
pub const DEFAULT_SERIES_CAPACITY: usize = 1 << 16;

/// One decoded sample of a single processor at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRow {
    /// Virtual time the sampling timer fired.
    pub at: Time,
    /// Active (front-area) entries held by the processor.
    pub active: u64,
    /// Contribution-block stack entries held by the processor.
    pub stack: u64,
    /// Ready tasks in the processor's local pool.
    pub pool_depth: u32,
    /// Slave tasks queued behind the current computation.
    pub queued: u32,
    /// Whether the processor was computing.
    pub busy: bool,
    /// Whether the processor was stalled by the capacity check.
    pub stalled: bool,
    /// Cumulative run-wide control messages at sample time.
    pub control_msgs: u64,
    /// Cumulative run-wide status messages at sample time.
    pub status_msgs: u64,
}

/// Columnar ring buffer holding one processor's samples, oldest
/// first. Each column is a preallocated `Vec`; once `cap` rows are
/// retained the oldest row is overwritten and counted in
/// [`ProcSeries::dropped`].
#[derive(Debug, Clone)]
pub struct ProcSeries {
    at: Vec<Time>,
    active: Vec<u64>,
    stack: Vec<u64>,
    pool: Vec<u32>,
    queued: Vec<u32>,
    flags: Vec<u8>,
    control: Vec<u64>,
    status: Vec<u64>,
    head: usize,
    cap: usize,
    dropped: u64,
}

const FLAG_BUSY: u8 = 1;
const FLAG_STALLED: u8 = 2;

impl ProcSeries {
    fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        ProcSeries {
            at: Vec::with_capacity(cap.min(1024)),
            active: Vec::with_capacity(cap.min(1024)),
            stack: Vec::with_capacity(cap.min(1024)),
            pool: Vec::with_capacity(cap.min(1024)),
            queued: Vec::with_capacity(cap.min(1024)),
            flags: Vec::with_capacity(cap.min(1024)),
            control: Vec::with_capacity(cap.min(1024)),
            status: Vec::with_capacity(cap.min(1024)),
            head: 0,
            cap,
            dropped: 0,
        }
    }

    fn push(&mut self, row: SampleRow) {
        let flags =
            if row.busy { FLAG_BUSY } else { 0 } | if row.stalled { FLAG_STALLED } else { 0 };
        if self.at.len() < self.cap {
            self.at.push(row.at);
            self.active.push(row.active);
            self.stack.push(row.stack);
            self.pool.push(row.pool_depth);
            self.queued.push(row.queued);
            self.flags.push(flags);
            self.control.push(row.control_msgs);
            self.status.push(row.status_msgs);
        } else {
            let i = self.head;
            self.at[i] = row.at;
            self.active[i] = row.active;
            self.stack[i] = row.stack;
            self.pool[i] = row.pool_depth;
            self.queued[i] = row.queued;
            self.flags[i] = flags;
            self.control[i] = row.control_msgs;
            self.status[i] = row.status_msgs;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.at.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.at.is_empty()
    }

    /// Samples evicted by the ring (0 means the series is complete).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The `i`-th retained sample, oldest first.
    pub fn get(&self, i: usize) -> SampleRow {
        let k = (self.head + i) % self.at.len();
        SampleRow {
            at: self.at[k],
            active: self.active[k],
            stack: self.stack[k],
            pool_depth: self.pool[k],
            queued: self.queued[k],
            busy: self.flags[k] & FLAG_BUSY != 0,
            stalled: self.flags[k] & FLAG_STALLED != 0,
            control_msgs: self.control[k],
            status_msgs: self.status[k],
        }
    }

    /// Retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = SampleRow> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The most recent retained sample.
    pub fn last(&self) -> Option<SampleRow> {
        if self.is_empty() {
            None
        } else {
            Some(self.get(self.len() - 1))
        }
    }
}

/// The sampled trajectory of one run: one [`ProcSeries`] per
/// processor plus the configured interval. Built by the drivers (both
/// backends, identically) whenever sampling is enabled; equality is
/// logical-stream equality, which is what the cross-backend
/// invariance tests assert.
#[derive(Debug, Clone)]
pub struct RunTimeseries {
    interval: Time,
    procs: Vec<ProcSeries>,
}

impl PartialEq for RunTimeseries {
    fn eq(&self, other: &Self) -> bool {
        self.interval == other.interval
            && self.procs.len() == other.procs.len()
            && self.procs.iter().zip(other.procs.iter()).all(|(a, b)| {
                a.len() == b.len()
                    && a.dropped == b.dropped
                    && a.iter().zip(b.iter()).all(|(x, y)| x == y)
            })
    }
}

impl RunTimeseries {
    /// Empty series for `nprocs` processors sampled every `interval`
    /// ticks, each ring bounded to `capacity` rows.
    pub fn new(nprocs: usize, interval: Time, capacity: usize) -> Self {
        RunTimeseries { interval, procs: (0..nprocs).map(|_| ProcSeries::new(capacity)).collect() }
    }

    /// The configured sampling interval (virtual ticks).
    pub fn interval(&self) -> Time {
        self.interval
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }

    /// The series of processor `p`.
    pub fn proc(&self, p: usize) -> &ProcSeries {
        &self.procs[p]
    }

    /// Appends a sample for processor `p`.
    pub fn push(&mut self, p: usize, row: SampleRow) {
        self.procs[p].push(row);
    }

    /// Total retained samples across all processors.
    pub fn total_len(&self) -> usize {
        self.procs.iter().map(|s| s.len()).sum()
    }

    /// Total evicted samples across all processors.
    pub fn total_dropped(&self) -> u64 {
        self.procs.iter().map(|s| s.dropped()).sum()
    }

    /// All retained samples merged into `(proc, row)` pairs ordered by
    /// `(at, proc)` — the deterministic flat order the text exports
    /// use.
    pub fn merged(&self) -> Vec<(usize, SampleRow)> {
        let mut rows: Vec<(usize, SampleRow)> = Vec::with_capacity(self.total_len());
        for (p, s) in self.procs.iter().enumerate() {
            rows.extend(s.iter().map(|r| (p, r)));
        }
        rows.sort_by_key(|(p, r)| (r.at, *p));
        rows
    }

    /// Writes the series as CSV (header + one line per sample,
    /// ordered by `(at, proc)`).
    pub fn write_csv<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "at,proc,active,stack,pool_depth,queued,busy,stalled,control_msgs,status_msgs"
        )?;
        for (p, r) in self.merged() {
            writeln!(
                w,
                "{},{},{},{},{},{},{},{},{},{}",
                r.at,
                p,
                r.active,
                r.stack,
                r.pool_depth,
                r.queued,
                u8::from(r.busy),
                u8::from(r.stalled),
                r.control_msgs,
                r.status_msgs
            )?;
        }
        Ok(())
    }

    /// Writes the series as JSON Lines (one object per sample, ordered
    /// by `(at, proc)`).
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for (p, r) in self.merged() {
            writeln!(
                w,
                "{{\"at\":{},\"proc\":{},\"active\":{},\"stack\":{},\"pool_depth\":{},\
                 \"queued\":{},\"busy\":{},\"stalled\":{},\"control_msgs\":{},\"status_msgs\":{}}}",
                r.at,
                p,
                r.active,
                r.stack,
                r.pool_depth,
                r.queued,
                r.busy,
                r.stalled,
                r.control_msgs,
                r.status_msgs
            )?;
        }
        Ok(())
    }

    /// Writes the *latest* sample per processor in the Prometheus text
    /// exposition format (plus per-proc sample counters), the shape a
    /// scrape endpoint would serve.
    pub fn write_prometheus<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "# HELP mf_sample_interval_ticks Configured sampling interval (virtual ticks)."
        )?;
        writeln!(w, "# TYPE mf_sample_interval_ticks gauge")?;
        writeln!(w, "mf_sample_interval_ticks {}", self.interval)?;
        let gauge = |name: &str, help: &str, pick: &dyn Fn(&SampleRow) -> u64| -> Vec<String> {
            let mut out = Vec::new();
            out.push(format!("# HELP {name} {help}"));
            out.push(format!("# TYPE {name} gauge"));
            for (p, s) in self.procs.iter().enumerate() {
                if let Some(r) = s.last() {
                    out.push(format!("{name}{{proc=\"{p}\"}} {}", pick(&r)));
                }
            }
            out
        };
        let sections: Vec<Vec<String>> = vec![
            gauge("mf_active_entries", "Sampled active (front-area) entries.", &|r| r.active),
            gauge("mf_stack_entries", "Sampled contribution-block stack entries.", &|r| r.stack),
            gauge("mf_pool_depth", "Sampled ready tasks in the local pool.", &|r| {
                u64::from(r.pool_depth)
            }),
            gauge("mf_queued_slave_tasks", "Sampled queued slave tasks.", &|r| u64::from(r.queued)),
            gauge("mf_busy", "1 when the processor was computing at sample time.", &|r| {
                u64::from(r.busy)
            }),
            gauge(
                "mf_stalled",
                "1 when the processor was capacity-stalled at sample time.",
                &|r| u64::from(r.stalled),
            ),
        ];
        for s in sections {
            for line in s {
                writeln!(w, "{line}")?;
            }
        }
        writeln!(w, "# HELP mf_samples_total Samples taken per processor (retained + evicted).")?;
        writeln!(w, "# TYPE mf_samples_total counter")?;
        for (p, s) in self.procs.iter().enumerate() {
            writeln!(w, "mf_samples_total{{proc=\"{p}\"}} {}", s.len() as u64 + s.dropped())?;
        }
        writeln!(w, "# HELP mf_samples_dropped_total Samples evicted by the ring per processor.")?;
        writeln!(w, "# TYPE mf_samples_dropped_total counter")?;
        for (p, s) in self.procs.iter().enumerate() {
            writeln!(w, "mf_samples_dropped_total{{proc=\"{p}\"}} {}", s.dropped())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(at: Time, active: u64) -> SampleRow {
        SampleRow {
            at,
            active,
            stack: active / 2,
            pool_depth: 3,
            queued: 1,
            busy: active.is_multiple_of(2),
            stalled: false,
            control_msgs: 10 + at,
            status_msgs: 20 + at,
        }
    }

    #[test]
    fn push_and_get_round_trip() {
        let mut ts = RunTimeseries::new(2, 50, 16);
        ts.push(0, row(50, 100));
        ts.push(1, row(50, 7));
        ts.push(0, row(100, 200));
        assert_eq!(ts.total_len(), 3);
        assert_eq!(ts.proc(0).len(), 2);
        assert_eq!(ts.proc(0).get(1), row(100, 200));
        assert_eq!(ts.proc(1).last(), Some(row(50, 7)));
        assert_eq!(ts.total_dropped(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut ts = RunTimeseries::new(1, 10, 3);
        for k in 0..5 {
            ts.push(0, row(k * 10, k));
        }
        let s = ts.proc(0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let ats: Vec<Time> = s.iter().map(|r| r.at).collect();
        assert_eq!(ats, vec![20, 30, 40], "oldest two evicted");
    }

    #[test]
    fn merged_orders_by_time_then_proc() {
        let mut ts = RunTimeseries::new(2, 10, 16);
        ts.push(1, row(10, 1));
        ts.push(0, row(10, 2));
        ts.push(0, row(20, 3));
        let order: Vec<(usize, Time)> = ts.merged().iter().map(|(p, r)| (*p, r.at)).collect();
        assert_eq!(order, vec![(0, 10), (1, 10), (0, 20)]);
    }

    #[test]
    fn logical_stream_equality() {
        let mut a = RunTimeseries::new(1, 10, 8);
        let mut b = RunTimeseries::new(1, 10, 8);
        for k in 0..4 {
            a.push(0, row(k * 10, k));
            b.push(0, row(k * 10, k));
        }
        assert_eq!(a, b);
        b.push(0, row(40, 9));
        assert_ne!(a, b);
        let c = RunTimeseries::new(1, 20, 8);
        assert_ne!(RunTimeseries::new(1, 10, 8), c, "interval is part of identity");
    }

    #[test]
    fn csv_and_jsonl_shapes() {
        let mut ts = RunTimeseries::new(1, 10, 8);
        ts.push(0, row(10, 5));
        let mut csv = Vec::new();
        ts.write_csv(&mut csv).unwrap();
        let csv = String::from_utf8(csv).unwrap();
        assert!(csv.starts_with("at,proc,active,"));
        assert!(csv.contains("\n10,0,5,2,3,1,"));
        let mut jl = Vec::new();
        ts.write_jsonl(&mut jl).unwrap();
        let jl = String::from_utf8(jl).unwrap();
        assert_eq!(jl.lines().count(), 1);
        assert!(jl.contains("\"at\":10"));
        assert!(jl.contains("\"active\":5"));
        assert!(jl.contains("\"busy\":false"));
    }

    #[test]
    fn prometheus_exposes_latest_sample() {
        let mut ts = RunTimeseries::new(2, 25, 8);
        ts.push(0, row(25, 100));
        ts.push(0, row(50, 200));
        ts.push(1, row(25, 7));
        let mut out = Vec::new();
        ts.write_prometheus(&mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("mf_sample_interval_ticks 25"));
        assert!(out.contains("mf_active_entries{proc=\"0\"} 200"), "latest, not first");
        assert!(out.contains("mf_active_entries{proc=\"1\"} 7"));
        assert!(out.contains("mf_samples_total{proc=\"0\"} 2"));
        assert!(out.contains("# TYPE mf_samples_dropped_total counter"));
    }
}
