//! Virtual clock and event queue.
//!
//! Two interchangeable engines implement the same deterministic
//! `(time, insertion order)` delivery contract behind the [`EventQueue`]
//! trait:
//!
//! * [`Sim`] — the production engine: per-processor event *lanes* (one
//!   small binary heap per destination processor) joined by a *merge
//!   front* (an indexed k-way min-heap over the lane heads), with event
//!   payloads parked in a slot arena so the steady state allocates
//!   nothing. A broadcast stays ONE logical entry fanned out lazily at
//!   delivery. Built for 1000+-processor sweeps where a single global
//!   heap of depth `O(total events)` dominates the run time.
//! * [`SingleHeapSim`] — the historical single global binary heap, kept
//!   as the differential-testing reference and microbenchmark baseline.
//!
//! Both engines pop the globally smallest `(time, seq)` pair, so their
//! event sequences are bit-identical — the property the engine-equivalence
//! proptests in `mf-core` and the `engine` criterion bench both lean on.

use std::collections::BinaryHeap;

/// Virtual time, in abstract ticks. The multifrontal layer uses
/// 1 tick = 1 µs with a flop rate expressed in flops/µs.
pub type Time = u64;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventPayload<M> {
    /// A message delivered to processor `to`.
    Message {
        /// Sending processor.
        from: usize,
        /// Receiving processor.
        to: usize,
        /// Payload.
        msg: M,
    },
    /// A locally scheduled timer on processor `proc` (task completions,
    /// periodic checks, ...), carrying an opaque key.
    Timer {
        /// Processor the timer belongs to.
        proc: usize,
        /// Caller-defined discriminator.
        key: u64,
    },
}

/// A fired event: when plus what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<M> {
    /// Firing time.
    pub at: Time,
    /// Payload.
    pub payload: EventPayload<M>,
}

/// The deterministic event-queue contract both engines implement.
///
/// Events fire in `(time, insertion order)` order: ties break FIFO, so a
/// simulation is a pure function of its inputs — the property that lets
/// the experiment tables be regenerated bit-identically. Drivers are
/// written against this trait so the same run can be executed on either
/// engine and compared field for field.
pub trait EventQueue<M: Clone> {
    /// Current virtual time.
    fn now(&self) -> Time;
    /// Number of events delivered so far.
    fn delivered(&self) -> u64;
    /// Number of pending events (counting every undelivered message of a
    /// broadcast block individually).
    fn pending(&self) -> usize;
    /// Schedules `payload` to fire `delay` ticks from now.
    fn schedule(&mut self, delay: Time, payload: EventPayload<M>);
    /// Schedules a timer on `proc` after `delay`.
    fn schedule_timer(&mut self, proc: usize, delay: Time, key: u64) {
        self.schedule(delay, EventPayload::Timer { proc, key });
    }
    /// Schedules delivery of clones of `msg` from `from` to every other
    /// processor in `0..nprocs`, `delay` ticks from now. Exactly
    /// equivalent to `nprocs - 1` back-to-back [`EventQueue::schedule`]
    /// calls of `Message` payloads — same firing time, same
    /// ascending-target FIFO order against every other event — but a
    /// single queue entry.
    fn schedule_broadcast(&mut self, delay: Time, from: usize, nprocs: usize, msg: M);
    /// Pops the earliest pending event, advancing the clock to its firing
    /// time. `None` when the queue is empty — schedule more events and
    /// popping resumes.
    fn pop(&mut self) -> Option<Event<M>>;
}

/// What one queue entry delivers: a single event, or a whole broadcast
/// block (the same message to every processor but the sender, all at one
/// instant). A broadcast's per-target messages would occupy contiguous
/// sequence numbers at a single firing time, so no other event can ever
/// interleave them — storing the block as ONE entry and unrolling it at
/// delivery keeps the event sequence bit-identical while cutting the
/// queue traffic of an n-processor broadcast from n-1 sifts to one.
#[derive(Debug)]
enum Queued<M> {
    One(EventPayload<M>),
    Broadcast { from: usize, nprocs: usize, msg: M },
}

/// An in-progress broadcast block: delivers `msg` to each `to` in
/// `0..nprocs` except `from`, in ascending order, before the queue pops
/// anything else (see [`Queued`] for why that order is exact).
#[derive(Debug)]
struct ActiveBroadcast<M> {
    at: Time,
    from: usize,
    nprocs: usize,
    next: usize,
    msg: M,
}

impl<M: Clone> ActiveBroadcast<M> {
    /// Yields the next delivery of the block, or `None` when drained.
    /// Returns the message by move on the last delivery (no clone).
    fn next_delivery(mut self) -> Option<(Event<M>, Option<Self>)> {
        if self.next == self.from {
            self.next += 1;
        }
        if self.next >= self.nprocs {
            return None;
        }
        let to = self.next;
        self.next += 1;
        let (at, from) = (self.at, self.from);
        let (msg, rest) = if broadcast_targets(self.from, self.nprocs, self.next) == 0 {
            (self.msg, None)
        } else {
            (self.msg.clone(), Some(self))
        };
        Some((Event { at, payload: EventPayload::Message { from, to, msg } }, rest))
    }
}

/// Number of undelivered targets of a broadcast block whose scan is at
/// position `next`: the members of `next..nprocs` minus the sender.
fn broadcast_targets(from: usize, nprocs: usize, next: usize) -> usize {
    (nprocs.saturating_sub(next)) - usize::from(from >= next && from < nprocs)
}

// ---------------------------------------------------------------------------
// Sharded engine: per-processor lanes + merge front + slot arena.
// ---------------------------------------------------------------------------

/// One queued entry of a lane: the global ordering key plus the index of
/// the payload's arena slot. 24 bytes, `Copy` — lane sifts move no
/// payloads.
#[derive(Debug, Clone, Copy)]
struct LaneEntry {
    at: Time,
    seq: u64,
    slot: u32,
}

impl LaneEntry {
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

/// Sentinel for "lane not in the merge front".
const ABSENT: u32 = u32::MAX;

/// The production event queue: per-processor lanes with a merge front.
///
/// Every event is routed to the lane of the processor it will fire on
/// (`to` for messages, `proc` for timers, the *sender* for broadcast
/// blocks — the lane only orders, delivery targets come from the block).
/// Each lane is a small binary min-heap of [`LaneEntry`]; a lane's head
/// is its earliest event. The *merge front* is an indexed binary min-heap
/// over the non-empty lanes, keyed by their heads: the global minimum is
/// the front's root's head, so a pop costs `O(log lane + log P)` instead
/// of `O(log total)` — and pushes to a lane whose head does not change
/// (the common case under load) touch the front not at all.
///
/// Payloads live in a slot arena recycled through a free list: after
/// warm-up, enqueue and dispatch allocate nothing (the PR-5 recorder's
/// arena discipline applied to the event core).
///
/// Sequence numbers are global, so the pop order is exactly the
/// single-heap order: smallest `(time, seq)` first, FIFO on ties.
#[derive(Debug)]
pub struct Sim<M> {
    now: Time,
    seq: u64,
    delivered: u64,
    pending: usize,
    /// Per-processor lanes; index = processor id. Grown on demand.
    lanes: Vec<Vec<LaneEntry>>,
    /// Merge front: lane ids, heap-ordered by each lane's head key.
    front: Vec<u32>,
    /// Position of each lane in `front` (`ABSENT` when the lane is empty).
    pos: Vec<u32>,
    /// Payload arena; `LaneEntry::slot` indexes into it.
    slots: Vec<Option<Queued<M>>>,
    /// Recycled arena slots.
    free: Vec<u32>,
    /// Broadcast block currently being unrolled.
    bcast: Option<ActiveBroadcast<M>>,
}

impl<M> Default for Sim<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Sim<M> {
    /// Empty queue at time zero; lanes grow on demand.
    pub fn new() -> Self {
        Self::with_procs(0)
    }

    /// Empty queue with `nprocs` lanes preallocated (avoids growth checks
    /// resizing mid-run when the processor count is known up front).
    pub fn with_procs(nprocs: usize) -> Self {
        Sim {
            now: 0,
            seq: 0,
            delivered: 0,
            pending: 0,
            lanes: (0..nprocs).map(|_| Vec::new()).collect(),
            front: Vec::with_capacity(nprocs),
            pos: vec![ABSENT; nprocs],
            slots: Vec::new(),
            free: Vec::new(),
            bcast: None,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of pending events (counting every undelivered message of a
    /// broadcast block individually).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Schedules `payload` to fire `delay` ticks from now.
    pub fn schedule(&mut self, delay: Time, payload: EventPayload<M>) {
        let lane = match &payload {
            EventPayload::Message { to, .. } => *to,
            EventPayload::Timer { proc, .. } => *proc,
        };
        let at = self.now + delay;
        let seq = self.seq;
        self.seq += 1;
        let slot = self.alloc_slot(Queued::One(payload));
        self.lane_push(lane, LaneEntry { at, seq, slot });
        self.pending += 1;
    }

    /// Schedules a timer on `proc` after `delay`.
    pub fn schedule_timer(&mut self, proc: usize, delay: Time, key: u64) {
        self.schedule(delay, EventPayload::Timer { proc, key });
    }

    /// Schedules a broadcast block (see [`EventQueue::schedule_broadcast`]).
    pub fn schedule_broadcast(&mut self, delay: Time, from: usize, nprocs: usize, msg: M) {
        let targets = broadcast_targets(from, nprocs, 0);
        if targets == 0 {
            return;
        }
        let at = self.now + delay;
        let seq = self.seq;
        self.seq += 1;
        let slot = self.alloc_slot(Queued::Broadcast { from, nprocs, msg });
        self.lane_push(from, LaneEntry { at, seq, slot });
        self.pending += targets;
    }

    #[inline]
    fn alloc_slot(&mut self, q: Queued<M>) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(q);
                i
            }
            None => {
                self.slots.push(Some(q));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Head ordering key of a (non-empty) lane.
    #[inline]
    fn head_key(&self, lane: u32) -> (Time, u64) {
        self.lanes[lane as usize][0].key()
    }

    fn lane_push(&mut self, lane: usize, e: LaneEntry) {
        if lane >= self.lanes.len() {
            self.lanes.resize_with(lane + 1, Vec::new);
            self.pos.resize(lane + 1, ABSENT);
        }
        let heap = &mut self.lanes[lane];
        let was_empty = heap.is_empty();
        let old_head = heap.first().map(LaneEntry::key);
        // Sift the new entry up the lane's min-heap.
        heap.push(e);
        let mut i = heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if heap[i].key() < heap[parent].key() {
                heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
        // Update the merge front only when the lane's head changed.
        if was_empty {
            self.front_insert(lane as u32);
        } else if Some(e.key()) < old_head {
            let p = self.pos[lane];
            debug_assert_ne!(p, ABSENT, "non-empty lane must be in the front");
            self.front_sift_up(p as usize);
        }
    }

    /// Pops the root of lane `lane`'s min-heap (must be non-empty).
    fn lane_pop(&mut self, lane: usize) -> LaneEntry {
        let heap = &mut self.lanes[lane];
        let top = heap.swap_remove(0);
        // Sift the swapped-in tail element back down.
        let len = heap.len();
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= len {
                break;
            }
            let r = l + 1;
            let c = if r < len && heap[r].key() < heap[l].key() { r } else { l };
            if heap[c].key() < heap[i].key() {
                heap.swap(i, c);
                i = c;
            } else {
                break;
            }
        }
        top
    }

    fn front_insert(&mut self, lane: u32) {
        self.front.push(lane);
        let i = self.front.len() - 1;
        self.pos[lane as usize] = i as u32;
        self.front_sift_up(i);
    }

    fn front_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.head_key(self.front[i]) < self.head_key(self.front[parent]) {
                self.front_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn front_sift_down(&mut self, mut i: usize) {
        let len = self.front.len();
        loop {
            let l = 2 * i + 1;
            if l >= len {
                break;
            }
            let r = l + 1;
            let c = if r < len && self.head_key(self.front[r]) < self.head_key(self.front[l]) {
                r
            } else {
                l
            };
            if self.head_key(self.front[c]) < self.head_key(self.front[i]) {
                self.front_swap(i, c);
                i = c;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn front_swap(&mut self, a: usize, b: usize) {
        self.front.swap(a, b);
        self.pos[self.front[a] as usize] = a as u32;
        self.pos[self.front[b] as usize] = b as u32;
    }

    /// Pops the globally earliest entry: the head of the front's root
    /// lane (the k-way-merge step). Restores the front invariant for the
    /// popped lane (re-sink on a later head, removal on empty).
    fn pop_earliest(&mut self) -> Option<(Time, Queued<M>)> {
        let lane = *self.front.first()?;
        let e = self.lane_pop(lane as usize);
        if self.lanes[lane as usize].is_empty() {
            // Remove the root lane from the front.
            let last = self.front.len() - 1;
            self.front_swap(0, last);
            self.front.pop();
            self.pos[lane as usize] = ABSENT;
            if !self.front.is_empty() {
                self.front_sift_down(0);
            }
        } else {
            // The lane's next head is later: sink it to its new rank.
            self.front_sift_down(0);
        }
        let q = self.slots[e.slot as usize].take().expect("arena slot must be occupied");
        self.free.push(e.slot);
        Some((e.at, q))
    }
}

impl<M: Clone> Sim<M> {
    /// Delivers the next message of the active broadcast block, if any.
    fn next_broadcast_delivery(&mut self) -> Option<Event<M>> {
        let b = self.bcast.take()?;
        let (ev, rest) = b.next_delivery()?;
        self.bcast = rest;
        self.delivered += 1;
        self.pending -= 1;
        Some(ev)
    }
}

/// Draining iteration: each `next()` pops the earliest pending event,
/// advancing the clock to its firing time. Yields `None` when the queue
/// is empty — schedule more events and iteration resumes.
impl<M: Clone> Iterator for Sim<M> {
    type Item = Event<M>;

    fn next(&mut self) -> Option<Event<M>> {
        loop {
            if let Some(e) = self.next_broadcast_delivery() {
                return Some(e);
            }
            let (at, payload) = self.pop_earliest()?;
            debug_assert!(at >= self.now, "time cannot run backwards");
            self.now = at;
            match payload {
                Queued::One(p) => {
                    self.delivered += 1;
                    self.pending -= 1;
                    return Some(Event { at, payload: p });
                }
                Queued::Broadcast { from, nprocs, msg } => {
                    // Unrolled by next_broadcast_delivery on the next
                    // loop iteration.
                    self.bcast = Some(ActiveBroadcast { at, from, nprocs, next: 0, msg });
                }
            }
        }
    }
}

impl<M: Clone> EventQueue<M> for Sim<M> {
    fn now(&self) -> Time {
        Sim::now(self)
    }
    fn delivered(&self) -> u64 {
        Sim::delivered(self)
    }
    fn pending(&self) -> usize {
        Sim::pending(self)
    }
    fn schedule(&mut self, delay: Time, payload: EventPayload<M>) {
        Sim::schedule(self, delay, payload)
    }
    fn schedule_broadcast(&mut self, delay: Time, from: usize, nprocs: usize, msg: M) {
        Sim::schedule_broadcast(self, delay, from, nprocs, msg)
    }
    fn pop(&mut self) -> Option<Event<M>> {
        self.next()
    }
}

// ---------------------------------------------------------------------------
// Reference engine: one global binary heap.
// ---------------------------------------------------------------------------

/// A queued event with its payload stored inline: the heap is the only
/// data structure on the hot path (one sift per push/pop, no per-event
/// hash-map insert/remove). Ordering ignores the payload and inverts
/// `(time, seq)` so the max-heap pops the earliest event, FIFO on ties.
#[derive(Debug)]
struct HeapEntry<M> {
    at: Time,
    seq: u64,
    payload: Queued<M>,
}

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for HeapEntry<M> {}

impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: smallest (time, seq) is the heap maximum.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The historical single-global-heap engine, kept as the
/// differential-testing reference: same API, same delivery contract,
/// `O(log total-events)` per operation. The engine-equivalence proptests
/// assert [`Sim`] reproduces its event sequence bit for bit; the `engine`
/// criterion bench measures what the lanes buy at high processor counts.
#[derive(Debug)]
pub struct SingleHeapSim<M> {
    now: Time,
    seq: u64,
    queue: BinaryHeap<HeapEntry<M>>,
    bcast: Option<ActiveBroadcast<M>>,
    delivered: u64,
}

impl<M> Default for SingleHeapSim<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> SingleHeapSim<M> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        SingleHeapSim { now: 0, seq: 0, queue: BinaryHeap::new(), bcast: None, delivered: 0 }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of pending events (counting every undelivered message of a
    /// broadcast block individually).
    pub fn pending(&self) -> usize {
        let queued: usize = self
            .queue
            .iter()
            .map(|e| match &e.payload {
                Queued::One(_) => 1,
                Queued::Broadcast { from, nprocs, .. } => broadcast_targets(*from, *nprocs, 0),
            })
            .sum();
        let draining =
            self.bcast.as_ref().map_or(0, |b| broadcast_targets(b.from, b.nprocs, b.next));
        queued + draining
    }

    /// Schedules `payload` to fire `delay` ticks from now.
    pub fn schedule(&mut self, delay: Time, payload: EventPayload<M>) {
        let at = self.now + delay;
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(HeapEntry { at, seq, payload: Queued::One(payload) });
    }

    /// Schedules a timer on `proc` after `delay`.
    pub fn schedule_timer(&mut self, proc: usize, delay: Time, key: u64) {
        self.schedule(delay, EventPayload::Timer { proc, key });
    }

    /// Schedules a broadcast block (see [`EventQueue::schedule_broadcast`]).
    pub fn schedule_broadcast(&mut self, delay: Time, from: usize, nprocs: usize, msg: M) {
        if broadcast_targets(from, nprocs, 0) == 0 {
            return;
        }
        let at = self.now + delay;
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(HeapEntry { at, seq, payload: Queued::Broadcast { from, nprocs, msg } });
    }
}

impl<M: Clone> SingleHeapSim<M> {
    /// Delivers the next message of the active broadcast block, if any.
    fn next_broadcast_delivery(&mut self) -> Option<Event<M>> {
        let b = self.bcast.take()?;
        let (ev, rest) = b.next_delivery()?;
        self.bcast = rest;
        self.delivered += 1;
        Some(ev)
    }
}

/// Draining iteration, identical contract to [`Sim`]'s.
impl<M: Clone> Iterator for SingleHeapSim<M> {
    type Item = Event<M>;

    fn next(&mut self) -> Option<Event<M>> {
        loop {
            if let Some(e) = self.next_broadcast_delivery() {
                return Some(e);
            }
            let HeapEntry { at, payload, .. } = self.queue.pop()?;
            debug_assert!(at >= self.now, "time cannot run backwards");
            self.now = at;
            match payload {
                Queued::One(p) => {
                    self.delivered += 1;
                    return Some(Event { at, payload: p });
                }
                Queued::Broadcast { from, nprocs, msg } => {
                    self.bcast = Some(ActiveBroadcast { at, from, nprocs, next: 0, msg });
                }
            }
        }
    }
}

impl<M: Clone> EventQueue<M> for SingleHeapSim<M> {
    fn now(&self) -> Time {
        SingleHeapSim::now(self)
    }
    fn delivered(&self) -> u64 {
        SingleHeapSim::delivered(self)
    }
    fn pending(&self) -> usize {
        SingleHeapSim::pending(self)
    }
    fn schedule(&mut self, delay: Time, payload: EventPayload<M>) {
        SingleHeapSim::schedule(self, delay, payload)
    }
    fn schedule_broadcast(&mut self, delay: Time, from: usize, nprocs: usize, msg: M) {
        SingleHeapSim::schedule_broadcast(self, delay, from, nprocs, msg)
    }
    fn pop(&mut self) -> Option<Event<M>> {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<&'static str> = Sim::new();
        sim.schedule(10, EventPayload::Timer { proc: 0, key: 1 });
        sim.schedule(5, EventPayload::Timer { proc: 0, key: 2 });
        sim.schedule(7, EventPayload::Timer { proc: 0, key: 3 });
        let keys: Vec<u64> = std::iter::from_fn(|| sim.next())
            .map(|e| match e.payload {
                EventPayload::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![2, 3, 1]);
        assert_eq!(sim.now(), 10);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim: Sim<u32> = Sim::new();
        for k in 0..5 {
            sim.schedule(3, EventPayload::Timer { proc: 0, key: k });
        }
        let keys: Vec<u64> = std::iter::from_fn(|| sim.next())
            .map(|e| match e.payload {
                EventPayload::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ties_break_fifo_across_lanes() {
        // Five processors, same instant: delivery follows insertion
        // order, not lane order — the merge front must compare seq.
        let mut sim: Sim<u32> = Sim::new();
        for (i, proc) in [4usize, 1, 3, 0, 2].into_iter().enumerate() {
            sim.schedule(3, EventPayload::Timer { proc, key: i as u64 });
        }
        let keys: Vec<u64> = std::iter::from_fn(|| sim.next())
            .map(|e| match e.payload {
                EventPayload::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clock_advances_monotonically_with_nested_schedules() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(4, EventPayload::Timer { proc: 0, key: 0 });
        let mut times = Vec::new();
        while let Some(e) = sim.next() {
            times.push(e.at);
            if let EventPayload::Timer { key, .. } = e.payload {
                if key < 3 {
                    sim.schedule(2, EventPayload::Timer { proc: 0, key: key + 1 });
                }
            }
        }
        assert_eq!(times, vec![4, 6, 8, 10]);
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut sim: Sim<u32> = Sim::new();
        assert!(sim.next().is_none());
        assert_eq!(sim.delivered(), 0);
    }

    #[test]
    fn broadcast_matches_per_message_schedules_exactly() {
        // The broadcast fast path must produce the same event sequence as
        // the per-target schedule loop it replaces, including FIFO
        // interleaving with other events at the same instant.
        let mut a: Sim<u32> = Sim::new();
        let mut b: Sim<u32> = Sim::new();
        a.schedule(5, EventPayload::Timer { proc: 9, key: 0 });
        b.schedule(5, EventPayload::Timer { proc: 9, key: 0 });
        for to in 0..4 {
            if to != 1 {
                a.schedule(5, EventPayload::Message { from: 1, to, msg: 7 });
            }
        }
        b.schedule_broadcast(5, 1, 4, 7);
        a.schedule(5, EventPayload::Timer { proc: 9, key: 1 });
        b.schedule(5, EventPayload::Timer { proc: 9, key: 1 });
        assert_eq!(a.pending(), b.pending());
        loop {
            let (ea, eb) = (a.next(), b.next());
            assert_eq!(ea, eb);
            if ea.is_none() {
                break;
            }
        }
        assert_eq!(a.delivered(), b.delivered());
    }

    #[test]
    fn broadcast_with_no_targets_schedules_nothing() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule_broadcast(3, 0, 1, 42);
        assert_eq!(sim.pending(), 0);
        assert!(sim.next().is_none());
    }

    #[test]
    fn events_scheduled_during_broadcast_drain_come_after_the_block() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule_broadcast(2, 0, 3, 5);
        let first = sim.next().unwrap();
        assert_eq!(first.payload, EventPayload::Message { from: 0, to: 1, msg: 5 });
        // Scheduling at delay 0 lands at the same instant but AFTER the
        // remaining block messages, as its seq would be larger.
        sim.schedule(0, EventPayload::Timer { proc: 7, key: 1 });
        let second = sim.next().unwrap();
        assert_eq!(second.payload, EventPayload::Message { from: 0, to: 2, msg: 5 });
        let third = sim.next().unwrap();
        assert_eq!(third.payload, EventPayload::Timer { proc: 7, key: 1 });
    }

    #[test]
    fn message_payloads_round_trip() {
        let mut sim: Sim<String> = Sim::new();
        sim.schedule(1, EventPayload::Message { from: 2, to: 3, msg: "hello".into() });
        let e = sim.next().unwrap();
        assert_eq!(e.payload, EventPayload::Message { from: 2, to: 3, msg: "hello".into() });
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut sim: Sim<u32> = Sim::with_procs(4);
        // Steady-state churn: the arena must stop growing once the
        // high-water mark of in-flight events is reached.
        for round in 0..100u64 {
            for p in 0..4 {
                sim.schedule(1, EventPayload::Timer { proc: p, key: round });
            }
            for _ in 0..4 {
                sim.next().unwrap();
            }
        }
        assert!(sim.slots.len() <= 8, "arena grew to {} slots", sim.slots.len());
        assert_eq!(sim.pending(), 0);
    }

    /// Tiny deterministic LCG for the differential test (no external
    /// crates in this crate's dependency set).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn lane_engine_matches_single_heap_on_random_workloads() {
        // The bit-identity contract, exercised end to end: any random mix
        // of point-to-point messages, timers, broadcasts, and reactive
        // re-scheduling must produce the exact same event sequence,
        // delivered counts, and clock on both engines.
        for seed in 0..20u64 {
            let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
            let nprocs = 2 + (rng.next() % 15) as usize;
            let mut lanes: Sim<u64> = Sim::with_procs(nprocs);
            let mut heap: SingleHeapSim<u64> = SingleHeapSim::new();
            let schedule = |s: u64, lanes: &mut Sim<u64>, heap: &mut SingleHeapSim<u64>| {
                let delay = s % 17;
                match s % 5 {
                    0 => {
                        let from = (s / 7) as usize % nprocs;
                        lanes.schedule_broadcast(delay, from, nprocs, s);
                        heap.schedule_broadcast(delay, from, nprocs, s);
                    }
                    1 | 2 => {
                        let proc = (s / 3) as usize % nprocs;
                        lanes.schedule_timer(proc, delay, s);
                        heap.schedule_timer(proc, delay, s);
                    }
                    _ => {
                        let from = (s / 5) as usize % nprocs;
                        let to = (s / 11) as usize % nprocs;
                        let p = EventPayload::Message { from, to, msg: s };
                        lanes.schedule(delay, p.clone());
                        heap.schedule(delay, p);
                    }
                }
            };
            for _ in 0..300 {
                let s = rng.next();
                schedule(s, &mut lanes, &mut heap);
            }
            let mut drained = 0u64;
            loop {
                assert_eq!(lanes.pending(), heap.pending(), "seed {seed}");
                let (a, b) = (lanes.next(), heap.next());
                assert_eq!(a, b, "seed {seed} diverged after {drained} events");
                let Some(ev) = a else { break };
                drained += 1;
                // Reactive load: some deliveries schedule new work, so
                // the engines are also compared mid-flight (including
                // pushes landing during a broadcast unroll).
                let (EventPayload::Message { msg, .. } | EventPayload::Timer { key: msg, .. }) =
                    ev.payload;
                if msg % 13 == 0 && drained < 2000 {
                    let s = rng.next();
                    schedule(s, &mut lanes, &mut heap);
                }
            }
            assert_eq!(lanes.delivered(), heap.delivered(), "seed {seed}");
            assert_eq!(lanes.now(), heap.now(), "seed {seed}");
            assert_eq!(lanes.pending(), 0);
        }
    }

    #[test]
    fn single_heap_contract_holds_too() {
        // The reference engine honours the same time/FIFO contract.
        let mut sim: SingleHeapSim<u32> = SingleHeapSim::new();
        sim.schedule(10, EventPayload::Timer { proc: 0, key: 1 });
        sim.schedule(5, EventPayload::Timer { proc: 1, key: 2 });
        sim.schedule(5, EventPayload::Timer { proc: 2, key: 3 });
        let keys: Vec<u64> = std::iter::from_fn(|| sim.next())
            .map(|e| match e.payload {
                EventPayload::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![2, 3, 1]);
        assert_eq!(sim.delivered(), 3);
    }
}
