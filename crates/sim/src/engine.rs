//! Virtual clock and event queue.

use std::collections::BinaryHeap;

/// Virtual time, in abstract ticks. The multifrontal layer uses
/// 1 tick = 1 µs with a flop rate expressed in flops/µs.
pub type Time = u64;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventPayload<M> {
    /// A message delivered to processor `to`.
    Message {
        /// Sending processor.
        from: usize,
        /// Receiving processor.
        to: usize,
        /// Payload.
        msg: M,
    },
    /// A locally scheduled timer on processor `proc` (task completions,
    /// periodic checks, ...), carrying an opaque key.
    Timer {
        /// Processor the timer belongs to.
        proc: usize,
        /// Caller-defined discriminator.
        key: u64,
    },
}

/// A fired event: when plus what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<M> {
    /// Firing time.
    pub at: Time,
    /// Payload.
    pub payload: EventPayload<M>,
}

/// What one heap entry delivers: a single event, or a whole broadcast
/// block (the same message to every processor but the sender, all at one
/// instant). A broadcast's per-target messages would occupy contiguous
/// sequence numbers at a single firing time, so no other event can ever
/// interleave them — storing the block as ONE entry and unrolling it at
/// delivery keeps the event sequence bit-identical while cutting the
/// heap traffic of an n-processor broadcast from n-1 sifts to one.
#[derive(Debug)]
enum Queued<M> {
    One(EventPayload<M>),
    Broadcast { from: usize, nprocs: usize, msg: M },
}

/// An in-progress broadcast block: delivers `msg` to each `to` in
/// `0..nprocs` except `from`, in ascending order, before the queue pops
/// anything else (see [`Queued`] for why that order is exact).
#[derive(Debug)]
struct ActiveBroadcast<M> {
    at: Time,
    from: usize,
    nprocs: usize,
    next: usize,
    msg: M,
}

/// A queued event with its payload stored inline: the heap is the only
/// data structure on the hot path (one sift per push/pop, no per-event
/// hash-map insert/remove). Ordering ignores the payload and inverts
/// `(time, seq)` so the max-heap pops the earliest event, FIFO on ties.
#[derive(Debug)]
struct HeapEntry<M> {
    at: Time,
    seq: u64,
    payload: Queued<M>,
}

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for HeapEntry<M> {}

impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: smallest (time, seq) is the heap maximum.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic discrete-event queue.
///
/// Events fire in `(time, insertion order)` order: ties break FIFO, so a
/// simulation is a pure function of its inputs — the property that lets
/// the experiment tables be regenerated bit-identically.
#[derive(Debug)]
pub struct Sim<M> {
    now: Time,
    seq: u64,
    queue: BinaryHeap<HeapEntry<M>>,
    bcast: Option<ActiveBroadcast<M>>,
    delivered: u64,
}

impl<M> Default for Sim<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Sim<M> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        Sim { now: 0, seq: 0, queue: BinaryHeap::new(), bcast: None, delivered: 0 }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of pending events (counting every undelivered message of a
    /// broadcast block individually).
    pub fn pending(&self) -> usize {
        let queued: usize = self
            .queue
            .iter()
            .map(|e| match &e.payload {
                Queued::One(_) => 1,
                Queued::Broadcast { from, nprocs, .. } => broadcast_targets(*from, *nprocs, 0),
            })
            .sum();
        let draining =
            self.bcast.as_ref().map_or(0, |b| broadcast_targets(b.from, b.nprocs, b.next));
        queued + draining
    }

    /// Schedules `payload` to fire `delay` ticks from now.
    pub fn schedule(&mut self, delay: Time, payload: EventPayload<M>) {
        let at = self.now + delay;
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(HeapEntry { at, seq, payload: Queued::One(payload) });
    }

    /// Schedules a timer on `proc` after `delay`.
    pub fn schedule_timer(&mut self, proc: usize, delay: Time, key: u64) {
        self.schedule(delay, EventPayload::Timer { proc, key });
    }

    /// Schedules delivery of clones of `msg` from `from` to every other
    /// processor in `0..nprocs`, `delay` ticks from now. Exactly
    /// equivalent to `nprocs - 1` back-to-back [`Sim::schedule`] calls of
    /// `Message` payloads — same firing time, same ascending-target FIFO
    /// order against every other event — but a single queue entry.
    pub fn schedule_broadcast(&mut self, delay: Time, from: usize, nprocs: usize, msg: M) {
        if broadcast_targets(from, nprocs, 0) == 0 {
            return;
        }
        let at = self.now + delay;
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(HeapEntry { at, seq, payload: Queued::Broadcast { from, nprocs, msg } });
    }
}

/// Number of undelivered targets of a broadcast block whose scan is at
/// position `next`: the members of `next..nprocs` minus the sender.
fn broadcast_targets(from: usize, nprocs: usize, next: usize) -> usize {
    (nprocs.saturating_sub(next)) - usize::from(from >= next && from < nprocs)
}

/// Draining iteration: each `next()` pops the earliest pending event,
/// advancing the clock to its firing time. Yields `None` when the queue
/// is empty — schedule more events and iteration resumes.
impl<M: Clone> Iterator for Sim<M> {
    type Item = Event<M>;

    fn next(&mut self) -> Option<Event<M>> {
        loop {
            if let Some(e) = self.next_broadcast_delivery() {
                return Some(e);
            }
            let HeapEntry { at, payload, .. } = self.queue.pop()?;
            debug_assert!(at >= self.now, "time cannot run backwards");
            self.now = at;
            match payload {
                Queued::One(p) => {
                    self.delivered += 1;
                    return Some(Event { at, payload: p });
                }
                Queued::Broadcast { from, nprocs, msg } => {
                    // Unrolled by next_broadcast_delivery on the next
                    // loop iteration (an empty block just clears itself).
                    self.bcast = Some(ActiveBroadcast { at, from, nprocs, next: 0, msg });
                }
            }
        }
    }
}

impl<M: Clone> Sim<M> {
    /// Delivers the next message of the active broadcast block, if any.
    fn next_broadcast_delivery(&mut self) -> Option<Event<M>> {
        let mut b = self.bcast.take()?;
        if b.next == b.from {
            b.next += 1;
        }
        if b.next >= b.nprocs {
            return None;
        }
        let to = b.next;
        b.next += 1;
        let (at, from) = (b.at, b.from);
        let msg = if broadcast_targets(b.from, b.nprocs, b.next) == 0 {
            // Last delivery: move the message out instead of cloning.
            b.msg
        } else {
            let msg = b.msg.clone();
            self.bcast = Some(b);
            msg
        };
        self.delivered += 1;
        Some(Event { at, payload: EventPayload::Message { from, to, msg } })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<&'static str> = Sim::new();
        sim.schedule(10, EventPayload::Timer { proc: 0, key: 1 });
        sim.schedule(5, EventPayload::Timer { proc: 0, key: 2 });
        sim.schedule(7, EventPayload::Timer { proc: 0, key: 3 });
        let keys: Vec<u64> = std::iter::from_fn(|| sim.next())
            .map(|e| match e.payload {
                EventPayload::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![2, 3, 1]);
        assert_eq!(sim.now(), 10);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim: Sim<u32> = Sim::new();
        for k in 0..5 {
            sim.schedule(3, EventPayload::Timer { proc: 0, key: k });
        }
        let keys: Vec<u64> = std::iter::from_fn(|| sim.next())
            .map(|e| match e.payload {
                EventPayload::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clock_advances_monotonically_with_nested_schedules() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(4, EventPayload::Timer { proc: 0, key: 0 });
        let mut times = Vec::new();
        while let Some(e) = sim.next() {
            times.push(e.at);
            if let EventPayload::Timer { key, .. } = e.payload {
                if key < 3 {
                    sim.schedule(2, EventPayload::Timer { proc: 0, key: key + 1 });
                }
            }
        }
        assert_eq!(times, vec![4, 6, 8, 10]);
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut sim: Sim<u32> = Sim::new();
        assert!(sim.next().is_none());
        assert_eq!(sim.delivered(), 0);
    }

    #[test]
    fn broadcast_matches_per_message_schedules_exactly() {
        // The broadcast fast path must produce the same event sequence as
        // the per-target schedule loop it replaces, including FIFO
        // interleaving with other events at the same instant.
        let mut a: Sim<u32> = Sim::new();
        let mut b: Sim<u32> = Sim::new();
        a.schedule(5, EventPayload::Timer { proc: 9, key: 0 });
        b.schedule(5, EventPayload::Timer { proc: 9, key: 0 });
        for to in 0..4 {
            if to != 1 {
                a.schedule(5, EventPayload::Message { from: 1, to, msg: 7 });
            }
        }
        b.schedule_broadcast(5, 1, 4, 7);
        a.schedule(5, EventPayload::Timer { proc: 9, key: 1 });
        b.schedule(5, EventPayload::Timer { proc: 9, key: 1 });
        assert_eq!(a.pending(), b.pending());
        loop {
            let (ea, eb) = (a.next(), b.next());
            assert_eq!(ea, eb);
            if ea.is_none() {
                break;
            }
        }
        assert_eq!(a.delivered(), b.delivered());
    }

    #[test]
    fn broadcast_with_no_targets_schedules_nothing() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule_broadcast(3, 0, 1, 42);
        assert_eq!(sim.pending(), 0);
        assert!(sim.next().is_none());
    }

    #[test]
    fn events_scheduled_during_broadcast_drain_come_after_the_block() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule_broadcast(2, 0, 3, 5);
        let first = sim.next().unwrap();
        assert_eq!(first.payload, EventPayload::Message { from: 0, to: 1, msg: 5 });
        // Scheduling at delay 0 lands at the same instant but AFTER the
        // remaining block messages, as its seq would be larger.
        sim.schedule(0, EventPayload::Timer { proc: 7, key: 1 });
        let second = sim.next().unwrap();
        assert_eq!(second.payload, EventPayload::Message { from: 0, to: 2, msg: 5 });
        let third = sim.next().unwrap();
        assert_eq!(third.payload, EventPayload::Timer { proc: 7, key: 1 });
    }

    #[test]
    fn message_payloads_round_trip() {
        let mut sim: Sim<String> = Sim::new();
        sim.schedule(1, EventPayload::Message { from: 2, to: 3, msg: "hello".into() });
        let e = sim.next().unwrap();
        assert_eq!(e.payload, EventPayload::Message { from: 2, to: 3, msg: "hello".into() });
    }
}
