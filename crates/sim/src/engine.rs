//! Virtual clock and event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time, in abstract ticks. The multifrontal layer uses
/// 1 tick = 1 µs with a flop rate expressed in flops/µs.
pub type Time = u64;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventPayload<M> {
    /// A message delivered to processor `to`.
    Message {
        /// Sending processor.
        from: usize,
        /// Receiving processor.
        to: usize,
        /// Payload.
        msg: M,
    },
    /// A locally scheduled timer on processor `proc` (task completions,
    /// periodic checks, ...), carrying an opaque key.
    Timer {
        /// Processor the timer belongs to.
        proc: usize,
        /// Caller-defined discriminator.
        key: u64,
    },
}

/// A fired event: when plus what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<M> {
    /// Firing time.
    pub at: Time,
    /// Payload.
    pub payload: EventPayload<M>,
}

/// Deterministic discrete-event queue.
///
/// Events fire in `(time, insertion order)` order: ties break FIFO, so a
/// simulation is a pure function of its inputs — the property that lets
/// the experiment tables be regenerated bit-identically.
#[derive(Debug)]
pub struct Sim<M> {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Reverse<(Time, u64)>>,
    payloads: std::collections::HashMap<u64, EventPayload<M>>,
    delivered: u64,
}

impl<M> Default for Sim<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Sim<M> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        Sim {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            delivered: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `payload` to fire `delay` ticks from now.
    pub fn schedule(&mut self, delay: Time, payload: EventPayload<M>) {
        let at = self.now + delay;
        let id = self.seq;
        self.seq += 1;
        self.queue.push(Reverse((at, id)));
        self.payloads.insert(id, payload);
    }

    /// Schedules a timer on `proc` after `delay`.
    pub fn schedule_timer(&mut self, proc: usize, delay: Time, key: u64) {
        self.schedule(delay, EventPayload::Timer { proc, key });
    }

    /// Pops the next event, advancing the clock to its firing time.
    #[allow(clippy::should_implement_trait)] // deliberate: reads naturally at call sites
    pub fn next(&mut self) -> Option<Event<M>> {
        let Reverse((at, id)) = self.queue.pop()?;
        debug_assert!(at >= self.now, "time cannot run backwards");
        self.now = at;
        self.delivered += 1;
        let payload = self.payloads.remove(&id).expect("payload for queued event");
        Some(Event { at, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<&'static str> = Sim::new();
        sim.schedule(10, EventPayload::Timer { proc: 0, key: 1 });
        sim.schedule(5, EventPayload::Timer { proc: 0, key: 2 });
        sim.schedule(7, EventPayload::Timer { proc: 0, key: 3 });
        let keys: Vec<u64> = std::iter::from_fn(|| sim.next())
            .map(|e| match e.payload {
                EventPayload::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![2, 3, 1]);
        assert_eq!(sim.now(), 10);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim: Sim<u32> = Sim::new();
        for k in 0..5 {
            sim.schedule(3, EventPayload::Timer { proc: 0, key: k });
        }
        let keys: Vec<u64> = std::iter::from_fn(|| sim.next())
            .map(|e| match e.payload {
                EventPayload::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clock_advances_monotonically_with_nested_schedules() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(4, EventPayload::Timer { proc: 0, key: 0 });
        let mut times = Vec::new();
        while let Some(e) = sim.next() {
            times.push(e.at);
            if let EventPayload::Timer { key, .. } = e.payload {
                if key < 3 {
                    sim.schedule(2, EventPayload::Timer { proc: 0, key: key + 1 });
                }
            }
        }
        assert_eq!(times, vec![4, 6, 8, 10]);
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut sim: Sim<u32> = Sim::new();
        assert!(sim.next().is_none());
        assert_eq!(sim.delivered(), 0);
    }

    #[test]
    fn message_payloads_round_trip() {
        let mut sim: Sim<String> = Sim::new();
        sim.schedule(1, EventPayload::Message { from: 2, to: 3, msg: "hello".into() });
        let e = sim.next().unwrap();
        assert_eq!(
            e.payload,
            EventPayload::Message { from: 2, to: 3, msg: "hello".into() }
        );
    }
}
