//! Always-on metrics registry: counters, gauges, and histograms
//! aggregated during a run and folded into `RunResult` /
//! `RunDiagnostics`.
//!
//! Unlike the flight recorder (opt-in, per-event), metrics are cheap
//! enough to keep on unconditionally: every observation is a couple of
//! integer adds. They answer the aggregate questions — how much traffic
//! did each message class generate, how stale were the views masters
//! decided from, how deep did the task pools run, how long did each
//! processor sit idle or stalled — while the recorder answers the
//! per-decision ones.

use crate::engine::Time;
use std::fmt::Write as _;

/// Number of power-of-two buckets in a [`Histogram`]. Bucket `i` counts
/// observations in `[2^(i-1), 2^i)` (bucket 0 counts zeros); the last
/// bucket absorbs everything larger.
pub const HIST_BUCKETS: usize = 32;

/// Fixed-size log2 histogram of `u64` observations.
///
/// Exact count/sum/min/max plus power-of-two buckets: enough for
/// staleness and pool-depth distributions without any allocation per
/// observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Log2 buckets; see [`HIST_BUCKETS`]. Heap-allocated to keep the
    /// registry (and everything embedding it, like error diagnostics)
    /// small on the stack.
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: vec![0; HIST_BUCKETS] }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let b = if v == 0 { 0 } else { ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1) };
        self.buckets[b] += 1;
    }

    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation, 0 when empty (presentation-friendly `min`).
    pub fn min_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Folds another histogram into this one (exact: counts, sums, and
    /// buckets add; min/max combine).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    fn json_into(&self, out: &mut String) {
        write!(
            out,
            "{{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3} }}",
            self.count,
            self.sum,
            self.min_or_zero(),
            self.max,
            self.mean()
        )
        .unwrap();
    }
}

/// Per-processor time and decision counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcMetrics {
    /// Ticks spent computing (sum of work-unit durations).
    pub busy_ticks: Time,
    /// Ticks spent *stalled*: idle with ready-but-inadmissible work (the
    /// capacity verdict deferred everything). Idle = makespan − busy −
    /// stalled.
    pub stalled_ticks: Time,
    /// Fronts this processor activated as owner.
    pub activations: u64,
    /// Pool decisions where the admissibility verdict deferred every
    /// ready task.
    pub deferrals: u64,
    /// Slave blocks computed for remote masters.
    pub slave_tasks: u64,
}

/// Counters of the failure-recovery machinery (processor loss/join).
/// All zero on a run without membership faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Processor deaths observed (declared by the lease protocol or
    /// scheduled by the fault model).
    pub kills_observed: u64,
    /// Processors that joined mid-run.
    pub joins_observed: u64,
    /// Orphaned subtree roots reassigned to an adopter.
    pub subtrees_reassigned: u64,
    /// Fronts whose elimination was re-executed (lost factors or lost
    /// contribution blocks).
    pub nodes_recomputed: u64,
    /// Pool tasks migrated by join-time rebalancing rounds.
    pub rebalance_migrations: u64,
    /// Orphaned contribution-block entries garbage-collected from
    /// surviving stacks during recovery.
    pub orphaned_cb_entries: u64,
}

impl RecoveryCounters {
    /// True when no recovery machinery fired.
    pub fn is_zero(&self) -> bool {
        *self == RecoveryCounters::default()
    }

    /// Folds another set of counters into this one.
    pub fn merge(&mut self, other: &RecoveryCounters) {
        self.kills_observed += other.kills_observed;
        self.joins_observed += other.joins_observed;
        self.subtrees_reassigned += other.subtrees_reassigned;
        self.nodes_recomputed += other.nodes_recomputed;
        self.rebalance_migrations += other.rebalance_migrations;
        self.orphaned_cb_entries += other.orphaned_cb_entries;
    }

    /// One-line human summary (empty when nothing fired).
    pub fn summary(&self) -> String {
        if self.is_zero() {
            return String::new();
        }
        format!(
            "recovery: {} kills, {} joins, {} subtrees reassigned, {} nodes recomputed, \
             {} migrations, {} orphaned CB entries reclaimed",
            self.kills_observed,
            self.joins_observed,
            self.subtrees_reassigned,
            self.nodes_recomputed,
            self.rebalance_migrations,
            self.orphaned_cb_entries
        )
    }

    fn json_into(&self, out: &mut String) {
        write!(
            out,
            "{{ \"kills_observed\": {}, \"joins_observed\": {}, \"subtrees_reassigned\": {}, \
             \"nodes_recomputed\": {}, \"rebalance_migrations\": {}, \"orphaned_cb_entries\": {} }}",
            self.kills_observed,
            self.joins_observed,
            self.subtrees_reassigned,
            self.nodes_recomputed,
            self.rebalance_migrations,
            self.orphaned_cb_entries
        )
        .unwrap();
    }
}

/// Run-wide aggregates, indexed where relevant by processor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Control messages delivered (task/data traffic: never droppable).
    pub control_msgs: u64,
    /// Payload bytes of control messages.
    pub control_bytes: u64,
    /// Status messages sent (information mechanisms; point-to-point
    /// count, i.e. a broadcast to `p−1` peers counts `p−1`).
    pub status_msgs: u64,
    /// Payload bytes of status messages.
    pub status_bytes: u64,
    /// Status messages lost to fault injection.
    pub dropped_status: u64,
    /// Capacity re-selection rounds across all type-2 selections.
    pub reselect_rounds: u64,
    /// Serialize-on-master fallbacks.
    pub serialized_fronts: u64,
    /// Deferred tasks force-activated by the stall-breaker.
    pub forced_activations: u64,
    /// View staleness (ticks since last status refresh of the chosen
    /// candidate's entry) observed at each slave-selection decision.
    pub view_staleness: Histogram,
    /// Ready-pool depth observed at each pool decision.
    pub pool_depth: Histogram,
    /// Failure-recovery counters (all zero without membership faults).
    pub recovery: RecoveryCounters,
    /// Per-processor counters.
    pub procs: Vec<ProcMetrics>,
}

impl RunMetrics {
    /// Registry for an `nprocs`-processor run.
    pub fn new(nprocs: usize) -> Self {
        RunMetrics { procs: vec![ProcMetrics::default(); nprocs], ..Default::default() }
    }

    /// Total messages of both classes.
    pub fn total_msgs(&self) -> u64 {
        self.control_msgs + self.status_msgs
    }

    /// One-line traffic summary, shared by every human-facing report.
    pub fn traffic_line(&self) -> String {
        format!(
            "traffic: {} control + {} status messages ({} + {} bytes), {} status dropped",
            self.control_msgs,
            self.status_msgs,
            self.control_bytes,
            self.status_bytes,
            self.dropped_status
        )
    }

    /// One-line scheduling-decision summary, shared by every human-facing
    /// report.
    pub fn decisions_line(&self) -> String {
        format!(
            "decisions: staleness mean {:.0} ticks (max {}), pool depth mean {:.1}, \
             {} deferrals, {} reselect rounds, {} serialized, {} forced",
            self.view_staleness.mean(),
            self.view_staleness.max,
            self.pool_depth.mean(),
            self.procs.iter().map(|p| p.deferrals).sum::<u64>(),
            self.reselect_rounds,
            self.serialized_fronts,
            self.forced_activations
        )
    }

    /// Folds another registry into this one. Counters add, histograms
    /// merge exactly, and per-processor counters add elementwise (the
    /// registries must cover the same processor count). Used to combine
    /// the decision-side metrics each scheduler core keeps with the
    /// traffic-side metrics its driver keeps.
    pub fn merge(&mut self, other: &RunMetrics) {
        assert_eq!(self.procs.len(), other.procs.len(), "metrics registries must match in nprocs");
        self.control_msgs += other.control_msgs;
        self.control_bytes += other.control_bytes;
        self.status_msgs += other.status_msgs;
        self.status_bytes += other.status_bytes;
        self.dropped_status += other.dropped_status;
        self.reselect_rounds += other.reselect_rounds;
        self.serialized_fronts += other.serialized_fronts;
        self.forced_activations += other.forced_activations;
        self.view_staleness.merge(&other.view_staleness);
        self.pool_depth.merge(&other.pool_depth);
        self.recovery.merge(&other.recovery);
        for (p, o) in self.procs.iter_mut().zip(&other.procs) {
            p.busy_ticks += o.busy_ticks;
            p.stalled_ticks += o.stalled_ticks;
            p.activations += o.activations;
            p.deferrals += o.deferrals;
            p.slave_tasks += o.slave_tasks;
        }
    }

    /// Renders the registry as a JSON object (no trailing newline).
    ///
    /// `makespan` lets per-processor idle time be derived
    /// (`makespan − busy − stalled`).
    pub fn to_json(&self, makespan: Time) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        writeln!(
            out,
            "      \"control_msgs\": {}, \"control_bytes\": {},",
            self.control_msgs, self.control_bytes
        )
        .unwrap();
        writeln!(
            out,
            "      \"status_msgs\": {}, \"status_bytes\": {}, \"dropped_status\": {},",
            self.status_msgs, self.status_bytes, self.dropped_status
        )
        .unwrap();
        writeln!(
            out,
            "      \"reselect_rounds\": {}, \"serialized_fronts\": {}, \"forced_activations\": {},",
            self.reselect_rounds, self.serialized_fronts, self.forced_activations
        )
        .unwrap();
        out.push_str("      \"view_staleness\": ");
        self.view_staleness.json_into(&mut out);
        out.push_str(",\n      \"pool_depth\": ");
        self.pool_depth.json_into(&mut out);
        out.push_str(",\n      \"recovery\": ");
        self.recovery.json_into(&mut out);
        out.push_str(",\n      \"procs\": [\n");
        for (i, p) in self.procs.iter().enumerate() {
            let sep = if i + 1 == self.procs.len() { "" } else { "," };
            let idle = makespan.saturating_sub(p.busy_ticks + p.stalled_ticks);
            writeln!(
                out,
                "        {{ \"proc\": {i}, \"busy_ticks\": {}, \"stalled_ticks\": {}, \
                 \"idle_ticks\": {idle}, \"activations\": {}, \"deferrals\": {}, \
                 \"slave_tasks\": {} }}{sep}",
                p.busy_ticks, p.stalled_ticks, p.activations, p.deferrals, p.slave_tasks
            )
            .unwrap();
        }
        out.push_str("      ]\n    }");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1 << 40);
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1 << 40);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1); // 2^40 clamps to the top bucket
        assert!((h.mean() - (6.0 + (1u64 << 40) as f64) / 5.0).abs() < 1e-6);
    }

    #[test]
    fn empty_histogram_presents_zero_min() {
        let h = Histogram::default();
        assert_eq!(h.min_or_zero(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn json_shape_is_object() {
        let mut m = RunMetrics::new(2);
        m.control_msgs = 3;
        m.procs[1].busy_ticks = 40;
        let j = m.to_json(100);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"idle_ticks\": 60"));
        assert!(j.contains("\"control_msgs\": 3"));
        assert!(j.contains("\"kills_observed\": 0"));
    }

    #[test]
    fn recovery_counters_merge_and_summarize() {
        let mut a = RecoveryCounters::default();
        assert!(a.is_zero());
        assert_eq!(a.summary(), "");
        let b = RecoveryCounters {
            kills_observed: 1,
            subtrees_reassigned: 2,
            nodes_recomputed: 7,
            orphaned_cb_entries: 640,
            ..Default::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.nodes_recomputed, 14);
        let s = a.summary();
        assert!(s.contains("2 kills") && s.contains("1280 orphaned CB entries"), "{s}");
    }
}
