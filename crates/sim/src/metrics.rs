//! Always-on metrics registry: counters, gauges, and histograms
//! aggregated during a run and folded into `RunResult` /
//! `RunDiagnostics`.
//!
//! Unlike the flight recorder (opt-in, per-event), metrics are cheap
//! enough to keep on unconditionally: every observation is a couple of
//! integer adds. They answer the aggregate questions — how much traffic
//! did each message class generate, how stale were the views masters
//! decided from, how deep did the task pools run, how long did each
//! processor sit idle or stalled — while the recorder answers the
//! per-decision ones.

use crate::engine::Time;
use std::fmt::Write as _;

/// Number of power-of-two buckets in a [`Histogram`]. Bucket `i` counts
/// observations in `[2^(i-1), 2^i)` (bucket 0 counts zeros); the last
/// bucket absorbs everything larger.
pub const HIST_BUCKETS: usize = 32;

/// Fixed-size log2 histogram of `u64` observations.
///
/// Exact count/sum/min/max plus power-of-two buckets: enough for
/// staleness and pool-depth distributions without any allocation per
/// observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Log2 buckets; see [`HIST_BUCKETS`]. A fixed inline array so that
    /// creating and merging histograms never allocates — each scheduler
    /// core carries two of these on its hot path.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; HIST_BUCKETS] }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let b = if v == 0 { 0 } else { ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1) };
        self.buckets[b] += 1;
    }

    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation, 0 when empty (presentation-friendly `min`).
    pub fn min_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Folds another histogram into this one (exact: counts, sums, and
    /// buckets add; min/max combine).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`) from
    /// the log2 buckets: the upper edge of the bucket where the
    /// cumulative count crosses `ceil(q · count)`, clamped to the exact
    /// `[min, max]` range. Returns 0 on an empty histogram — never the
    /// internal `u64::MAX` min sentinel.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Bucket 0 holds zeros; bucket i (i ≥ 1) holds
                // [2^(i-1), 2^i), upper edge 2^i − 1.
                let edge = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return edge.min(self.max).max(self.min_or_zero());
            }
        }
        self.max
    }

    fn json_into(&self, out: &mut String) {
        write!(
            out,
            "{{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3} }}",
            self.count,
            self.sum,
            self.min_or_zero(),
            self.max,
            self.mean()
        )
        .unwrap();
    }

    /// Writes this histogram in the Prometheus text exposition format:
    /// cumulative `_bucket{le=…}` lines on the log2 edges (up to the
    /// highest populated bucket), then `+Inf`, `_sum`, and `_count`.
    fn prometheus_into(&self, out: &mut String, name: &str, help: &str) {
        writeln!(out, "# HELP {name} {help}").unwrap();
        writeln!(out, "# TYPE {name} histogram").unwrap();
        if let Some(top) = self.buckets.iter().rposition(|&c| c > 0) {
            let mut cum = 0u64;
            for (i, &c) in self.buckets.iter().enumerate().take(top + 1) {
                cum += c;
                let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
                writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}").unwrap();
            }
        }
        writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count).unwrap();
        writeln!(out, "{name}_sum {}", self.sum).unwrap();
        writeln!(out, "{name}_count {}", self.count).unwrap();
    }
}

/// Per-processor time and decision counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcMetrics {
    /// Ticks spent computing (sum of work-unit durations).
    pub busy_ticks: Time,
    /// Ticks spent *stalled*: idle with ready-but-inadmissible work (the
    /// capacity verdict deferred everything). Idle = makespan − busy −
    /// stalled.
    pub stalled_ticks: Time,
    /// Fronts this processor activated as owner.
    pub activations: u64,
    /// Pool decisions where the admissibility verdict deferred every
    /// ready task.
    pub deferrals: u64,
    /// Slave blocks computed for remote masters.
    pub slave_tasks: u64,
}

/// Counters of the failure-recovery machinery (processor loss/join).
/// All zero on a run without membership faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Processor deaths observed (declared by the lease protocol or
    /// scheduled by the fault model).
    pub kills_observed: u64,
    /// Processors that joined mid-run.
    pub joins_observed: u64,
    /// Orphaned subtree roots reassigned to an adopter.
    pub subtrees_reassigned: u64,
    /// Fronts whose elimination was re-executed (lost factors or lost
    /// contribution blocks).
    pub nodes_recomputed: u64,
    /// Pool tasks migrated by join-time rebalancing rounds.
    pub rebalance_migrations: u64,
    /// Orphaned contribution-block entries garbage-collected from
    /// surviving stacks during recovery.
    pub orphaned_cb_entries: u64,
}

impl RecoveryCounters {
    /// True when no recovery machinery fired.
    pub fn is_zero(&self) -> bool {
        *self == RecoveryCounters::default()
    }

    /// Folds another set of counters into this one.
    pub fn merge(&mut self, other: &RecoveryCounters) {
        self.kills_observed += other.kills_observed;
        self.joins_observed += other.joins_observed;
        self.subtrees_reassigned += other.subtrees_reassigned;
        self.nodes_recomputed += other.nodes_recomputed;
        self.rebalance_migrations += other.rebalance_migrations;
        self.orphaned_cb_entries += other.orphaned_cb_entries;
    }

    /// One-line human summary (empty when nothing fired).
    pub fn summary(&self) -> String {
        if self.is_zero() {
            return String::new();
        }
        format!(
            "recovery: {} kills, {} joins, {} subtrees reassigned, {} nodes recomputed, \
             {} migrations, {} orphaned CB entries reclaimed",
            self.kills_observed,
            self.joins_observed,
            self.subtrees_reassigned,
            self.nodes_recomputed,
            self.rebalance_migrations,
            self.orphaned_cb_entries
        )
    }

    fn json_into(&self, out: &mut String) {
        write!(
            out,
            "{{ \"kills_observed\": {}, \"joins_observed\": {}, \"subtrees_reassigned\": {}, \
             \"nodes_recomputed\": {}, \"rebalance_migrations\": {}, \"orphaned_cb_entries\": {} }}",
            self.kills_observed,
            self.joins_observed,
            self.subtrees_reassigned,
            self.nodes_recomputed,
            self.rebalance_migrations,
            self.orphaned_cb_entries
        )
        .unwrap();
    }
}

/// The slice of [`RunMetrics`] a single scheduler core owns: its own
/// per-processor counters plus the decision counters and histograms it
/// contributes to the run-wide registry.
///
/// Cores used to each carry a full `RunMetrics` with a P-length `procs`
/// vector of which they only ever touched their own row — O(P²) memory
/// across a run and an O(P) zeroing per core. `CoreMetrics` is O(1) per
/// core and allocation-free (the histograms are inline arrays); the
/// driver folds every core into the single run-wide registry with
/// [`RunMetrics::merge_core`] at the end.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreMetrics {
    /// Capacity re-selection rounds across all type-2 selections.
    pub reselect_rounds: u64,
    /// Serialize-on-master fallbacks.
    pub serialized_fronts: u64,
    /// Deferred tasks force-activated by the stall-breaker.
    pub forced_activations: u64,
    /// View staleness observed at each slave-selection decision.
    pub view_staleness: Histogram,
    /// Ready-pool depth observed at each pool decision.
    pub pool_depth: Histogram,
    /// Failure-recovery counters (all zero without membership faults).
    pub recovery: RecoveryCounters,
    /// This processor's own time and decision counters.
    pub me: ProcMetrics,
}

/// Run-wide aggregates, indexed where relevant by processor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Control messages delivered (task/data traffic: never droppable).
    pub control_msgs: u64,
    /// Payload bytes of control messages.
    pub control_bytes: u64,
    /// Status messages sent (information mechanisms; point-to-point
    /// count, i.e. a broadcast to `p−1` peers counts `p−1`).
    pub status_msgs: u64,
    /// Payload bytes of status messages.
    pub status_bytes: u64,
    /// Status messages lost to fault injection.
    pub dropped_status: u64,
    /// Capacity re-selection rounds across all type-2 selections.
    pub reselect_rounds: u64,
    /// Serialize-on-master fallbacks.
    pub serialized_fronts: u64,
    /// Deferred tasks force-activated by the stall-breaker.
    pub forced_activations: u64,
    /// View staleness (ticks since last status refresh of the chosen
    /// candidate's entry) observed at each slave-selection decision.
    pub view_staleness: Histogram,
    /// Ready-pool depth observed at each pool decision.
    pub pool_depth: Histogram,
    /// Failure-recovery counters (all zero without membership faults).
    pub recovery: RecoveryCounters,
    /// Per-processor counters.
    pub procs: Vec<ProcMetrics>,
}

impl RunMetrics {
    /// Registry for an `nprocs`-processor run.
    pub fn new(nprocs: usize) -> Self {
        RunMetrics { procs: vec![ProcMetrics::default(); nprocs], ..Default::default() }
    }

    /// Total messages of both classes.
    pub fn total_msgs(&self) -> u64 {
        self.control_msgs + self.status_msgs
    }

    /// One-line traffic summary, shared by every human-facing report.
    pub fn traffic_line(&self) -> String {
        format!(
            "traffic: {} control + {} status messages ({} + {} bytes), {} status dropped",
            self.control_msgs,
            self.status_msgs,
            self.control_bytes,
            self.status_bytes,
            self.dropped_status
        )
    }

    /// One-line scheduling-decision summary, shared by every human-facing
    /// report.
    pub fn decisions_line(&self) -> String {
        format!(
            "decisions: staleness mean {:.0} ticks (max {}), pool depth mean {:.1}, \
             {} deferrals, {} reselect rounds, {} serialized, {} forced",
            self.view_staleness.mean(),
            self.view_staleness.max,
            self.pool_depth.mean(),
            self.procs.iter().map(|p| p.deferrals).sum::<u64>(),
            self.reselect_rounds,
            self.serialized_fronts,
            self.forced_activations
        )
    }

    /// Folds another registry into this one. Counters add, histograms
    /// merge exactly, and per-processor counters add elementwise (the
    /// registries must cover the same processor count). Used to combine
    /// the decision-side metrics each scheduler core keeps with the
    /// traffic-side metrics its driver keeps.
    pub fn merge(&mut self, other: &RunMetrics) {
        assert_eq!(self.procs.len(), other.procs.len(), "metrics registries must match in nprocs");
        self.control_msgs += other.control_msgs;
        self.control_bytes += other.control_bytes;
        self.status_msgs += other.status_msgs;
        self.status_bytes += other.status_bytes;
        self.dropped_status += other.dropped_status;
        self.reselect_rounds += other.reselect_rounds;
        self.serialized_fronts += other.serialized_fronts;
        self.forced_activations += other.forced_activations;
        self.view_staleness.merge(&other.view_staleness);
        self.pool_depth.merge(&other.pool_depth);
        self.recovery.merge(&other.recovery);
        for (p, o) in self.procs.iter_mut().zip(&other.procs) {
            p.busy_ticks += o.busy_ticks;
            p.stalled_ticks += o.stalled_ticks;
            p.activations += o.activations;
            p.deferrals += o.deferrals;
            p.slave_tasks += o.slave_tasks;
        }
    }

    /// Folds one scheduler core's [`CoreMetrics`] into this registry:
    /// decision counters and histograms merge run-wide, the core's own
    /// counters add into `procs[id]`. Equivalent to the old
    /// full-registry [`RunMetrics::merge`] where the core's registry was
    /// zero everywhere but its own row.
    pub fn merge_core(&mut self, id: usize, core: &CoreMetrics) {
        self.reselect_rounds += core.reselect_rounds;
        self.serialized_fronts += core.serialized_fronts;
        self.forced_activations += core.forced_activations;
        self.view_staleness.merge(&core.view_staleness);
        self.pool_depth.merge(&core.pool_depth);
        self.recovery.merge(&core.recovery);
        let p = &mut self.procs[id];
        let o = &core.me;
        p.busy_ticks += o.busy_ticks;
        p.stalled_ticks += o.stalled_ticks;
        p.activations += o.activations;
        p.deferrals += o.deferrals;
        p.slave_tasks += o.slave_tasks;
    }

    /// Renders the registry as a JSON object (no trailing newline).
    ///
    /// `makespan` lets per-processor idle time be derived
    /// (`makespan − busy − stalled`).
    pub fn to_json(&self, makespan: Time) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        writeln!(
            out,
            "      \"control_msgs\": {}, \"control_bytes\": {},",
            self.control_msgs, self.control_bytes
        )
        .unwrap();
        writeln!(
            out,
            "      \"status_msgs\": {}, \"status_bytes\": {}, \"dropped_status\": {},",
            self.status_msgs, self.status_bytes, self.dropped_status
        )
        .unwrap();
        writeln!(
            out,
            "      \"reselect_rounds\": {}, \"serialized_fronts\": {}, \"forced_activations\": {},",
            self.reselect_rounds, self.serialized_fronts, self.forced_activations
        )
        .unwrap();
        out.push_str("      \"view_staleness\": ");
        self.view_staleness.json_into(&mut out);
        out.push_str(",\n      \"pool_depth\": ");
        self.pool_depth.json_into(&mut out);
        out.push_str(",\n      \"recovery\": ");
        self.recovery.json_into(&mut out);
        out.push_str(",\n      \"procs\": [\n");
        for (i, p) in self.procs.iter().enumerate() {
            let sep = if i + 1 == self.procs.len() { "" } else { "," };
            let idle = makespan.saturating_sub(p.busy_ticks + p.stalled_ticks);
            writeln!(
                out,
                "        {{ \"proc\": {i}, \"busy_ticks\": {}, \"stalled_ticks\": {}, \
                 \"idle_ticks\": {idle}, \"activations\": {}, \"deferrals\": {}, \
                 \"slave_tasks\": {} }}{sep}",
                p.busy_ticks, p.stalled_ticks, p.activations, p.deferrals, p.slave_tasks
            )
            .unwrap();
        }
        out.push_str("      ]\n    }");
        out
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (trailing newline included): traffic and decision counters, the
    /// staleness/pool-depth histograms with cumulative log2 buckets,
    /// the failure-recovery counters, and per-processor time/decision
    /// gauges. This is the machine-facing counterpart of
    /// [`RunMetrics::to_json`] — and the only export that surfaces
    /// [`RecoveryCounters`] outside the JSON blob.
    pub fn to_prometheus(&self, makespan: Time) -> String {
        fn counter(out: &mut String, name: &str, help: &str, v: u64) {
            writeln!(out, "# HELP {name} {help}").unwrap();
            writeln!(out, "# TYPE {name} counter").unwrap();
            writeln!(out, "{name} {v}").unwrap();
        }
        fn per_proc(out: &mut String, name: &str, help: &str, values: &[u64]) {
            writeln!(out, "# HELP {name} {help}").unwrap();
            writeln!(out, "# TYPE {name} gauge").unwrap();
            for (p, v) in values.iter().enumerate() {
                writeln!(out, "{name}{{proc=\"{p}\"}} {v}").unwrap();
            }
        }
        let mut out = String::new();
        writeln!(out, "# HELP mf_makespan_ticks Virtual completion time of the run.").unwrap();
        writeln!(out, "# TYPE mf_makespan_ticks gauge").unwrap();
        writeln!(out, "mf_makespan_ticks {makespan}").unwrap();
        counter(
            &mut out,
            "mf_control_msgs_total",
            "Control messages delivered.",
            self.control_msgs,
        );
        counter(
            &mut out,
            "mf_control_bytes_total",
            "Payload bytes of control messages.",
            self.control_bytes,
        );
        counter(
            &mut out,
            "mf_status_msgs_total",
            "Status messages sent (point-to-point count).",
            self.status_msgs,
        );
        counter(
            &mut out,
            "mf_status_bytes_total",
            "Payload bytes of status messages.",
            self.status_bytes,
        );
        counter(
            &mut out,
            "mf_dropped_status_total",
            "Status messages lost to fault injection.",
            self.dropped_status,
        );
        counter(
            &mut out,
            "mf_reselect_rounds_total",
            "Capacity re-selection rounds across all type-2 selections.",
            self.reselect_rounds,
        );
        counter(
            &mut out,
            "mf_serialized_fronts_total",
            "Serialize-on-master fallbacks.",
            self.serialized_fronts,
        );
        counter(
            &mut out,
            "mf_forced_activations_total",
            "Deferred tasks force-activated by the stall-breaker.",
            self.forced_activations,
        );
        self.view_staleness.prometheus_into(
            &mut out,
            "mf_view_staleness_ticks",
            "View staleness observed at each slave-selection decision.",
        );
        self.pool_depth.prometheus_into(
            &mut out,
            "mf_pool_depth",
            "Ready-pool depth observed at each pool decision.",
        );
        let rc = &self.recovery;
        counter(
            &mut out,
            "mf_recovery_kills_observed_total",
            "Processor deaths observed (lease protocol or fault schedule).",
            rc.kills_observed,
        );
        counter(
            &mut out,
            "mf_recovery_joins_observed_total",
            "Processors that joined mid-run.",
            rc.joins_observed,
        );
        counter(
            &mut out,
            "mf_recovery_subtrees_reassigned_total",
            "Orphaned subtree roots reassigned to an adopter.",
            rc.subtrees_reassigned,
        );
        counter(
            &mut out,
            "mf_recovery_nodes_recomputed_total",
            "Fronts whose elimination was re-executed.",
            rc.nodes_recomputed,
        );
        counter(
            &mut out,
            "mf_recovery_rebalance_migrations_total",
            "Pool tasks migrated by join-time rebalancing.",
            rc.rebalance_migrations,
        );
        counter(
            &mut out,
            "mf_recovery_orphaned_cb_entries_total",
            "Orphaned contribution-block entries reclaimed during recovery.",
            rc.orphaned_cb_entries,
        );
        let col = |f: fn(&ProcMetrics) -> u64| self.procs.iter().map(f).collect::<Vec<u64>>();
        per_proc(&mut out, "mf_proc_busy_ticks", "Ticks spent computing.", &col(|p| p.busy_ticks));
        per_proc(
            &mut out,
            "mf_proc_stalled_ticks",
            "Ticks spent stalled by the capacity verdict.",
            &col(|p| p.stalled_ticks),
        );
        per_proc(
            &mut out,
            "mf_proc_idle_ticks",
            "Derived idle time (makespan - busy - stalled).",
            &self
                .procs
                .iter()
                .map(|p| makespan.saturating_sub(p.busy_ticks + p.stalled_ticks))
                .collect::<Vec<u64>>(),
        );
        per_proc(
            &mut out,
            "mf_proc_activations",
            "Fronts activated as owner.",
            &col(|p| p.activations),
        );
        per_proc(
            &mut out,
            "mf_proc_deferrals",
            "Pool decisions that deferred every ready task.",
            &col(|p| p.deferrals),
        );
        per_proc(
            &mut out,
            "mf_proc_slave_tasks",
            "Slave blocks computed for remote masters.",
            &col(|p| p.slave_tasks),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1 << 40);
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1 << 40);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1); // 2^40 clamps to the top bucket
        assert!((h.mean() - (6.0 + (1u64 << 40) as f64) / 5.0).abs() < 1e-6);
    }

    #[test]
    fn empty_histogram_presents_zero_min() {
        let h = Histogram::default();
        assert_eq!(h.min_or_zero(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn empty_min_sentinel_never_leaks_into_merges_or_exports() {
        // The internal min sentinel is u64::MAX; merging empties around
        // must neither surface it nor corrupt a real min.
        let mut a = Histogram::default();
        a.merge(&Histogram::default());
        assert_eq!(a.min, u64::MAX, "internal sentinel survives empty merges");
        assert_eq!(a.min_or_zero(), 0);
        let mut m = RunMetrics::new(1);
        m.merge(&RunMetrics::new(1));
        let j = m.to_json(10);
        assert!(j.contains("\"min\": 0"), "empty min must export as 0: {j}");
        assert!(!j.contains(&u64::MAX.to_string()), "sentinel leaked: {j}");
        let prom = m.to_prometheus(10);
        assert!(!prom.contains(&u64::MAX.to_string()), "sentinel leaked: {prom}");
        // A real observation after the empty merges keeps exact min/max.
        a.observe(7);
        let mut b = Histogram::default();
        b.merge(&a);
        assert_eq!((b.min, b.max, b.min_or_zero()), (7, 7, 7));
    }

    #[test]
    fn quantile_estimates_from_buckets() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram quantile is 0");
        assert_eq!(h.quantile(1.0), 0);
        for v in [0, 0, 1, 2, 3, 8, 1000] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 0, "q=0 lands in the zero bucket");
        // 4 of 7 observations are ≤ 3: the median's bucket edge is 3.
        assert_eq!(h.quantile(0.5), 3);
        // The top quantile is clamped to the exact max, not the bucket
        // edge (1023 for the bucket holding 1000).
        assert_eq!(h.quantile(1.0), 1000);
        // A single-value histogram answers that value everywhere.
        let mut s = Histogram::default();
        s.observe(42);
        assert_eq!(s.quantile(0.01), 42);
        assert_eq!(s.quantile(0.99), 42);
        // Out-of-range q is clamped, not a panic.
        assert_eq!(h.quantile(-1.0), 0);
        assert_eq!(h.quantile(2.0), 1000);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut m = RunMetrics::new(2);
        m.control_msgs = 3;
        m.status_msgs = 5;
        m.view_staleness.observe(0);
        m.view_staleness.observe(9);
        m.procs[1].busy_ticks = 40;
        m.recovery.kills_observed = 1;
        let prom = m.to_prometheus(100);
        assert!(prom.contains("# TYPE mf_control_msgs_total counter"));
        assert!(prom.contains("mf_control_msgs_total 3"));
        assert!(prom.contains("mf_makespan_ticks 100"));
        // Histogram: cumulative buckets on log2 edges plus +Inf/sum/count.
        assert!(prom.contains("mf_view_staleness_ticks_bucket{le=\"0\"} 1"));
        assert!(prom.contains("mf_view_staleness_ticks_bucket{le=\"15\"} 2"));
        assert!(prom.contains("mf_view_staleness_ticks_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("mf_view_staleness_ticks_sum 9"));
        assert!(prom.contains("mf_view_staleness_ticks_count 2"));
        // Recovery counters are surfaced (the satellite this pins).
        assert!(prom.contains("mf_recovery_kills_observed_total 1"));
        assert!(prom.contains("mf_recovery_joins_observed_total 0"));
        // Per-proc gauges with derived idle time.
        assert!(prom.contains("mf_proc_busy_ticks{proc=\"1\"} 40"));
        assert!(prom.contains("mf_proc_idle_ticks{proc=\"1\"} 60"));
        assert!(prom.ends_with('\n'));
    }

    #[test]
    fn json_shape_is_object() {
        let mut m = RunMetrics::new(2);
        m.control_msgs = 3;
        m.procs[1].busy_ticks = 40;
        let j = m.to_json(100);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"idle_ticks\": 60"));
        assert!(j.contains("\"control_msgs\": 3"));
        assert!(j.contains("\"kills_observed\": 0"));
    }

    #[test]
    fn merge_core_matches_full_registry_merge() {
        // A CoreMetrics folded at id must equal the old scheme: a full
        // RunMetrics zero everywhere but row id.
        let mut core = CoreMetrics {
            reselect_rounds: 3,
            serialized_fronts: 1,
            forced_activations: 2,
            recovery: RecoveryCounters { nodes_recomputed: 5, ..Default::default() },
            me: ProcMetrics {
                busy_ticks: 100,
                stalled_ticks: 7,
                activations: 9,
                deferrals: 2,
                slave_tasks: 4,
            },
            ..Default::default()
        };
        core.view_staleness.observe(17);
        core.pool_depth.observe(4);
        let mut via_core = RunMetrics::new(3);
        via_core.merge_core(1, &core);
        let mut full = RunMetrics::new(3);
        full.reselect_rounds = core.reselect_rounds;
        full.serialized_fronts = core.serialized_fronts;
        full.forced_activations = core.forced_activations;
        full.view_staleness = core.view_staleness.clone();
        full.pool_depth = core.pool_depth.clone();
        full.recovery = core.recovery;
        full.procs[1] = core.me.clone();
        let mut via_full = RunMetrics::new(3);
        via_full.merge(&full);
        assert_eq!(via_core, via_full);
    }

    #[test]
    fn recovery_counters_merge_and_summarize() {
        let mut a = RecoveryCounters::default();
        assert!(a.is_zero());
        assert_eq!(a.summary(), "");
        let b = RecoveryCounters {
            kills_observed: 1,
            subtrees_reassigned: 2,
            nodes_recomputed: 7,
            orphaned_cb_entries: 640,
            ..Default::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.nodes_recomputed, 14);
        let s = a.summary();
        assert!(s.contains("2 kills") && s.contains("1280 orphaned CB entries"), "{s}");
    }
}
