//! Structured flight recorder for scheduling decisions.
//!
//! The paper's whole argument is about *explaining* per-processor stack
//! peaks (Figures 4/6/8, Tables 2–6): a surprising peak must be traceable
//! back to the slave-selection or task-activation decision that caused
//! it. The [`Recording`] is a ring buffer of typed, timestamped
//! [`SchedEvent`]s emitted by the `mf-core` event loop at every decision
//! point — memory movements with *node attribution*, front activations,
//! compute spans, slave selections **with the per-candidate metric vector
//! the master saw**, pool activation/deferral verdicts, status-broadcast
//! sends/applies with view staleness, fault perturbations, and capacity
//! re-selections.
//!
//! Recording is opt-in and zero-cost when disabled: the solver holds an
//! `Option<Recording>` and every emission site is a branch on `None`
//! (events are built inside closures, so no allocation happens on the
//! disabled path). A recording replays deterministically: the same
//! configuration yields a byte-identical event stream, which makes
//! recordings diffable across strategies and thread-pool widths.

use crate::engine::Time;
use std::collections::VecDeque;

/// Which of the two active-memory areas a movement touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemArea {
    /// Frontal-matrix area (allocated at activation, freed at completion).
    Front,
    /// Contribution-block stack (pushed at completion, popped at the
    /// parent's assembly).
    Stack,
}

impl MemArea {
    /// Short lowercase label (`"front"` / `"stack"`).
    pub fn name(self) -> &'static str {
        match self {
            MemArea::Front => "front",
            MemArea::Stack => "stack",
        }
    }
}

/// What a processor is computing (mirrors the solver's work units).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskRole {
    /// Full-front elimination (type 1, subtree node, or a slave-less
    /// type-2 node).
    Elim,
    /// Master part of a type-2 node.
    Master,
    /// A slave block of a type-2 node.
    Slave,
    /// A share of the 2-D type-3 root.
    Root,
}

impl TaskRole {
    /// Short lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            TaskRole::Elim => "elim",
            TaskRole::Master => "master",
            TaskRole::Slave => "slave",
            TaskRole::Root => "root",
        }
    }
}

/// Node classification of an activated front (mirrors the static
/// mapping's type-1/2/3 classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontClass {
    /// Node inside a leaf subtree.
    Subtree,
    /// Sequential upper-tree node.
    Type1,
    /// 1-D parallel node (master + dynamically chosen slaves).
    Type2,
    /// 2-D root scattered over every processor.
    Type3,
}

impl FrontClass {
    /// Short lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            FrontClass::Subtree => "subtree",
            FrontClass::Type1 => "type1",
            FrontClass::Type2 => "type2",
            FrontClass::Type3 => "type3",
        }
    }
}

/// Which status (information-mechanism) message a send/apply concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusKind {
    /// Active-memory increment (Section 4).
    MemDelta,
    /// Workload increment (Section 3).
    LoadDelta,
    /// Subtree-peak announcement (Section 5.1).
    SubtreePeak,
    /// Ready-master prediction (Section 5.1).
    Predicted,
    /// Master's slave-choice announcement (Section 4).
    Assigned,
}

impl StatusKind {
    /// Short label matching the message name.
    pub fn name(self) -> &'static str {
        match self {
            StatusKind::MemDelta => "mem_delta",
            StatusKind::LoadDelta => "load_delta",
            StatusKind::SubtreePeak => "subtree_peak",
            StatusKind::Predicted => "predicted",
            StatusKind::Assigned => "assigned",
        }
    }
}

/// One slave block chosen by a type-2 master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlavePick {
    /// The chosen processor.
    pub proc: usize,
    /// Entries of the block it receives.
    pub entries: u64,
}

/// One structured scheduling event. Everything the `explain` replay and
/// the Perfetto export need is carried inline; node and processor ids
/// refer to the assembly tree and machine of the recorded run.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedEvent {
    /// `entries` were allocated in `area` on `proc`, attributed to `node`.
    MemAlloc {
        /// Processor whose account grew.
        proc: usize,
        /// Node the allocation belongs to.
        node: usize,
        /// Which area.
        area: MemArea,
        /// Entries allocated.
        entries: u64,
    },
    /// `entries` were released from `area` on `proc` (node attribution as
    /// in [`SchedEvent::MemAlloc`]).
    MemFree {
        /// Processor whose account shrank.
        proc: usize,
        /// Node the release belongs to.
        node: usize,
        /// Which area.
        area: MemArea,
        /// Entries released.
        entries: u64,
    },
    /// `proc` activated front `node` (the owner-side decision).
    Activate {
        /// Activating (owner) processor.
        proc: usize,
        /// Activated node.
        node: usize,
        /// Node classification.
        class: FrontClass,
    },
    /// `proc` started computing its part of `node`.
    ComputeStart {
        /// Computing processor.
        proc: usize,
        /// Node computed.
        node: usize,
        /// Which part.
        role: TaskRole,
    },
    /// `proc` finished computing its part of `node`.
    ComputeEnd {
        /// Computing processor.
        proc: usize,
        /// Node computed.
        node: usize,
        /// Which part.
        role: TaskRole,
    },
    /// A type-2 master resolved its slave selection: the exact
    /// per-candidate metric vector it decided from (Algorithm 1 /
    /// workload baseline, indexed by processor), the *age* of its view of
    /// each processor (ticks since the last applied status refresh — the
    /// Figure 5 staleness), and the outcome.
    SlaveSelection {
        /// The master processor.
        master: usize,
        /// The type-2 node.
        node: usize,
        /// Metric per processor as the master believed it.
        metric: Vec<u64>,
        /// View age per processor (ticks since last status apply).
        view_age: Vec<Time>,
        /// Chosen blocks (empty = serialized on the master).
        picked: Vec<SlavePick>,
        /// Capacity re-selection rounds before the outcome (0 = first
        /// selection stood).
        rounds: u32,
        /// Whether the front fell back to serialize-on-master.
        serialized: bool,
    },
    /// A capacity re-selection dropped candidates whose projected memory
    /// would breach the cap.
    Reselect {
        /// The master processor.
        master: usize,
        /// The type-2 node being re-selected.
        node: usize,
        /// Candidates removed this round.
        dropped: Vec<usize>,
    },
    /// A pool (task-selection) decision on `proc`: Algorithm 2 / LIFO
    /// verdict over a non-empty pool.
    PoolDecision {
        /// Deciding processor.
        proc: usize,
        /// Ready tasks in the pool at decision time.
        depth: usize,
        /// Activated task (`None` = every ready task was deferred by the
        /// Algorithm-2 admissibility/capacity verdict).
        picked: Option<usize>,
    },
    /// A status broadcast left `from` (recorded once per broadcast, not
    /// per receiver).
    StatusSend {
        /// Broadcasting processor.
        from: usize,
        /// Which mechanism.
        kind: StatusKind,
        /// Signed payload value (delta or absolute level).
        value: i64,
    },
    /// A status message was applied at `to`, refreshing its view of
    /// `about`.
    StatusApply {
        /// Receiving processor.
        to: usize,
        /// Sender.
        from: usize,
        /// Processor whose view entry was refreshed.
        about: usize,
        /// Which mechanism.
        kind: StatusKind,
        /// Age of the replaced view entry (ticks since its last refresh).
        age: Time,
    },
    /// The fault injector dropped a status message.
    FaultDrop {
        /// Sender of the lost message.
        from: usize,
        /// Intended receiver.
        to: usize,
    },
    /// The capacity stall-breaker force-activated a deferred task.
    Forced {
        /// Processor forced to activate.
        proc: usize,
        /// Activated node.
        node: usize,
        /// Its activation cost (entries).
        cost: u64,
    },
}

/// A timestamped [`SchedEvent`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Virtual time of the event.
    pub at: Time,
    /// The event.
    pub event: SchedEvent,
}

/// Ring buffer of [`TimedEvent`]s. With `capacity: None` it grows
/// unbounded (what `explain` needs: peak attribution replays the full
/// memory-event history); with a capacity it keeps the most recent
/// events and counts what it dropped, so long-running services can fly
/// with a bounded black box.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recording {
    events: VecDeque<TimedEvent>,
    capacity: Option<usize>,
    dropped: u64,
}

impl Recording {
    /// Empty recording; `capacity: None` = unbounded.
    pub fn new(capacity: Option<usize>) -> Self {
        Recording { events: VecDeque::new(), capacity, dropped: 0 }
    }

    /// Appends an event, evicting the oldest when at capacity.
    pub fn record(&mut self, at: Time, event: SchedEvent) {
        if let Some(cap) = self.capacity {
            if cap == 0 {
                self.dropped += 1;
                return;
            }
            if self.events.len() >= cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(TimedEvent { at, event });
    }

    /// Recorded events, oldest first (time-ordered: the solver emits in
    /// virtual-time order).
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring (0 means the recording is complete —
    /// the precondition of exact peak attribution).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: usize) -> SchedEvent {
        SchedEvent::MemAlloc { proc: 0, node, area: MemArea::Front, entries: 1 }
    }

    #[test]
    fn unbounded_recording_keeps_everything() {
        let mut r = Recording::new(None);
        for k in 0..1000 {
            r.record(k, ev(k as usize));
        }
        assert_eq!(r.len(), 1000);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.events().next().unwrap().at, 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut r = Recording::new(Some(3));
        for k in 0..5 {
            r.record(k, ev(k as usize));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let first = r.events().next().unwrap();
        assert_eq!(first.at, 2, "oldest two evicted");
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = Recording::new(Some(0));
        r.record(1, ev(0));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }
}
