//! Structured flight recorder for scheduling decisions.
//!
//! The paper's whole argument is about *explaining* per-processor stack
//! peaks (Figures 4/6/8, Tables 2–6): a surprising peak must be traceable
//! back to the slave-selection or task-activation decision that caused
//! it. The [`Recording`] captures a timestamped stream of scheduling
//! events emitted by the `mf-core` event loop at every decision point —
//! memory movements with *node attribution*, front activations, compute
//! spans, slave selections **with the per-candidate metric vector the
//! master saw**, pool activation/deferral verdicts, status-broadcast
//! sends/applies with view staleness, fault perturbations, and capacity
//! re-selections.
//!
//! # Storage layout (the production-grade cost model)
//!
//! Recording millions of events must cost nanoseconds, not microseconds,
//! per event, so the store is columnar rather than an enum buffer:
//!
//! * every event is one fixed-size POD [`SchedEventRecord`] row (40
//!   bytes: timestamp, a signed value, three small ids, a kind and a tag
//!   byte, and a payload reference) appended to preallocated pages —
//!   no per-event heap allocation;
//! * the rare variable-length payloads (slave-selection metric vectors,
//!   view ages, picked blocks, re-selection drop lists) are
//!   bump-allocated as plain `u64` words into a per-recording arena and
//!   referenced by `(offset, len)`;
//! * consumers iterate [`Recording::events`], which decodes each row
//!   into a borrowed [`EventRef`] on the fly — slices point straight
//!   into the arena, so replay allocates nothing either.
//!
//! On the wire between the scheduler core and its driver an event is a
//! [`CompactEvent`]: the same POD header plus an optional boxed payload
//! (only slave selections and re-selections carry one), which keeps the
//! `mf-core` `Effect` enum small.
//!
//! Recording is opt-in and zero-cost when disabled: the solver holds an
//! `Option<Recording>` and every emission site is a branch on `None`
//! (events are built inside closures, so nothing is constructed on the
//! disabled path). A recording replays deterministically: the same
//! configuration yields a byte-identical event stream, which makes
//! recordings diffable across strategies and thread-pool widths.

use crate::engine::Time;

/// Which of the two active-memory areas a movement touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemArea {
    /// Frontal-matrix area (allocated at activation, freed at completion).
    Front,
    /// Contribution-block stack (pushed at completion, popped at the
    /// parent's assembly).
    Stack,
}

impl MemArea {
    /// Short lowercase label (`"front"` / `"stack"`).
    pub fn name(self) -> &'static str {
        match self {
            MemArea::Front => "front",
            MemArea::Stack => "stack",
        }
    }

    fn tag(self) -> u8 {
        match self {
            MemArea::Front => 0,
            MemArea::Stack => 1,
        }
    }

    fn from_tag(t: u8) -> Self {
        match t {
            0 => MemArea::Front,
            _ => MemArea::Stack,
        }
    }
}

/// What a processor is computing (mirrors the solver's work units).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskRole {
    /// Full-front elimination (type 1, subtree node, or a slave-less
    /// type-2 node).
    Elim,
    /// Master part of a type-2 node.
    Master,
    /// A slave block of a type-2 node.
    Slave,
    /// A share of the 2-D type-3 root.
    Root,
}

impl TaskRole {
    /// Short lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            TaskRole::Elim => "elim",
            TaskRole::Master => "master",
            TaskRole::Slave => "slave",
            TaskRole::Root => "root",
        }
    }

    fn tag(self) -> u8 {
        match self {
            TaskRole::Elim => 0,
            TaskRole::Master => 1,
            TaskRole::Slave => 2,
            TaskRole::Root => 3,
        }
    }

    fn from_tag(t: u8) -> Self {
        match t {
            0 => TaskRole::Elim,
            1 => TaskRole::Master,
            2 => TaskRole::Slave,
            _ => TaskRole::Root,
        }
    }
}

/// Node classification of an activated front (mirrors the static
/// mapping's type-1/2/3 classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontClass {
    /// Node inside a leaf subtree.
    Subtree,
    /// Sequential upper-tree node.
    Type1,
    /// 1-D parallel node (master + dynamically chosen slaves).
    Type2,
    /// 2-D root scattered over every processor.
    Type3,
}

impl FrontClass {
    /// Short lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            FrontClass::Subtree => "subtree",
            FrontClass::Type1 => "type1",
            FrontClass::Type2 => "type2",
            FrontClass::Type3 => "type3",
        }
    }

    fn tag(self) -> u8 {
        match self {
            FrontClass::Subtree => 0,
            FrontClass::Type1 => 1,
            FrontClass::Type2 => 2,
            FrontClass::Type3 => 3,
        }
    }

    fn from_tag(t: u8) -> Self {
        match t {
            0 => FrontClass::Subtree,
            1 => FrontClass::Type1,
            2 => FrontClass::Type2,
            _ => FrontClass::Type3,
        }
    }
}

/// Which status (information-mechanism) message a send/apply concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusKind {
    /// Active-memory increment (Section 4).
    MemDelta,
    /// Workload increment (Section 3).
    LoadDelta,
    /// Subtree-peak announcement (Section 5.1).
    SubtreePeak,
    /// Ready-master prediction (Section 5.1).
    Predicted,
    /// Master's slave-choice announcement (Section 4).
    Assigned,
}

impl StatusKind {
    /// Short label matching the message name.
    pub fn name(self) -> &'static str {
        match self {
            StatusKind::MemDelta => "mem_delta",
            StatusKind::LoadDelta => "load_delta",
            StatusKind::SubtreePeak => "subtree_peak",
            StatusKind::Predicted => "predicted",
            StatusKind::Assigned => "assigned",
        }
    }

    fn tag(self) -> u8 {
        match self {
            StatusKind::MemDelta => 0,
            StatusKind::LoadDelta => 1,
            StatusKind::SubtreePeak => 2,
            StatusKind::Predicted => 3,
            StatusKind::Assigned => 4,
        }
    }

    fn from_tag(t: u8) -> Self {
        match t {
            0 => StatusKind::MemDelta,
            1 => StatusKind::LoadDelta,
            2 => StatusKind::SubtreePeak,
            3 => StatusKind::Predicted,
            _ => StatusKind::Assigned,
        }
    }
}

/// One slave block chosen by a type-2 master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlavePick {
    /// The chosen processor.
    pub proc: usize,
    /// Entries of the block it receives.
    pub entries: u64,
}

/// Discriminant of an encoded event row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Kind {
    MemAlloc = 0,
    MemFree = 1,
    Activate = 2,
    ComputeStart = 3,
    ComputeEnd = 4,
    SlaveSelection = 5,
    Reselect = 6,
    PoolDecision = 7,
    StatusSend = 8,
    StatusApply = 9,
    FaultDrop = 10,
    Forced = 11,
    ProcLost = 12,
    ProcJoined = 13,
    SubtreeReassigned = 14,
    CoreGrant = 15,
}

impl Kind {
    fn from_u8(k: u8) -> Self {
        match k {
            0 => Kind::MemAlloc,
            1 => Kind::MemFree,
            2 => Kind::Activate,
            3 => Kind::ComputeStart,
            4 => Kind::ComputeEnd,
            5 => Kind::SlaveSelection,
            6 => Kind::Reselect,
            7 => Kind::PoolDecision,
            8 => Kind::StatusSend,
            9 => Kind::StatusApply,
            10 => Kind::FaultDrop,
            11 => Kind::Forced,
            12 => Kind::ProcLost,
            13 => Kind::ProcJoined,
            14 => Kind::SubtreeReassigned,
            _ => Kind::CoreGrant,
        }
    }
}

/// One fixed-size event row: the columnar store appends these to
/// preallocated pages. 40 bytes, `Copy`, no drop glue — the whole record
/// path is a branch, a possible arena append, and one 40-byte store.
///
/// Field meaning depends on `kind` (see [`EventRef`] for the decoded
/// view): `a`/`b`/`c` carry small ids (processor, node, depth, rounds),
/// `value` the signed magnitude (entries, delta, age, cost), `tag` the
/// area/role/class/kind sub-discriminant, and `(payload_off,
/// payload_len)` reference `u64` words in the recording's arena (len 0 =
/// no payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SchedEventRecord {
    at: Time,
    value: i64,
    payload_off: u32,
    payload_len: u32,
    a: u32,
    b: u32,
    c: u32,
    kind: u8,
    tag: u8,
}

/// One event in wire form, as carried by `mf-core`'s `Effect::Record`:
/// the fixed-size header of a [`SchedEventRecord`] plus an optional
/// boxed payload for the two variable-length variants (slave selections
/// and capacity re-selections). POD events (the overwhelming majority)
/// construct without touching the heap, which keeps the `Effect` enum
/// small and the emission path cheap.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactEvent {
    value: i64,
    payload: Option<Box<[u64]>>,
    a: u32,
    b: u32,
    c: u32,
    kind: u8,
    tag: u8,
}

#[inline]
fn id32(x: usize) -> u32 {
    debug_assert!(x <= u32::MAX as usize, "id {x} does not fit the compact event header");
    x as u32
}

impl CompactEvent {
    #[inline]
    fn pod(kind: Kind, tag: u8, a: u32, b: u32, c: u32, value: i64) -> Self {
        CompactEvent { value, payload: None, a, b, c, kind: kind as u8, tag }
    }

    /// `entries` allocated in `area` on `proc`, attributed to `node`.
    #[inline]
    pub fn mem_alloc(proc: usize, node: usize, area: MemArea, entries: u64) -> Self {
        Self::pod(Kind::MemAlloc, area.tag(), id32(proc), id32(node), 0, entries as i64)
    }

    /// `entries` released from `area` on `proc`, attributed to `node`.
    #[inline]
    pub fn mem_free(proc: usize, node: usize, area: MemArea, entries: u64) -> Self {
        Self::pod(Kind::MemFree, area.tag(), id32(proc), id32(node), 0, entries as i64)
    }

    /// `proc` activated front `node` (the owner-side decision).
    #[inline]
    pub fn activate(proc: usize, node: usize, class: FrontClass) -> Self {
        Self::pod(Kind::Activate, class.tag(), id32(proc), id32(node), 0, 0)
    }

    /// `proc` started computing its `role` part of `node`.
    #[inline]
    pub fn compute_start(proc: usize, node: usize, role: TaskRole) -> Self {
        Self::pod(Kind::ComputeStart, role.tag(), id32(proc), id32(node), 0, 0)
    }

    /// `proc` finished computing its `role` part of `node`.
    #[inline]
    pub fn compute_end(proc: usize, node: usize, role: TaskRole) -> Self {
        Self::pod(Kind::ComputeEnd, role.tag(), id32(proc), id32(node), 0, 0)
    }

    /// A type-2 master resolved its slave selection (see
    /// [`EventRef::SlaveSelection`] for the field meaning). The metric
    /// and view-age vectors must have one entry per processor.
    pub fn slave_selection(
        master: usize,
        node: usize,
        metric: &[u64],
        view_age: &[Time],
        picked: &[SlavePick],
        rounds: u32,
        serialized: bool,
    ) -> Self {
        debug_assert_eq!(metric.len(), view_age.len());
        let n = metric.len();
        let mut words = Vec::with_capacity(2 + 2 * n + 2 * picked.len());
        words.push(n as u64);
        words.extend_from_slice(metric);
        words.extend_from_slice(view_age);
        words.push(picked.len() as u64);
        for p in picked {
            words.push(p.proc as u64);
            words.push(p.entries);
        }
        CompactEvent {
            value: 0,
            payload: Some(words.into_boxed_slice()),
            a: id32(master),
            b: id32(node),
            c: rounds,
            kind: Kind::SlaveSelection as u8,
            tag: serialized as u8,
        }
    }

    /// A capacity re-selection on `master` dropped the `dropped`
    /// candidates for type-2 `node`.
    pub fn reselect(master: usize, node: usize, dropped: &[usize]) -> Self {
        let words: Vec<u64> = dropped.iter().map(|&p| p as u64).collect();
        CompactEvent {
            value: 0,
            payload: Some(words.into_boxed_slice()),
            a: id32(master),
            b: id32(node),
            c: 0,
            kind: Kind::Reselect as u8,
            tag: 0,
        }
    }

    /// A pool decision on `proc` over `depth` ready tasks; `picked:
    /// None` = everything deferred.
    #[inline]
    pub fn pool_decision(proc: usize, depth: usize, picked: Option<usize>) -> Self {
        let value = match picked {
            Some(v) => v as i64,
            None => -1,
        };
        Self::pod(Kind::PoolDecision, 0, id32(proc), 0, id32(depth), value)
    }

    /// A status broadcast of `kind` left `from` with payload `value`.
    #[inline]
    pub fn status_send(from: usize, kind: StatusKind, value: i64) -> Self {
        Self::pod(Kind::StatusSend, kind.tag(), id32(from), 0, 0, value)
    }

    /// A status message of `kind` from `from` was applied at `to`,
    /// refreshing a view entry of `about` that was `age` ticks old.
    #[inline]
    pub fn status_apply(to: usize, from: usize, about: usize, kind: StatusKind, age: Time) -> Self {
        Self::pod(Kind::StatusApply, kind.tag(), id32(to), id32(about), id32(from), age as i64)
    }

    /// The fault injector dropped a status message `from` → `to`.
    #[inline]
    pub fn fault_drop(from: usize, to: usize) -> Self {
        Self::pod(Kind::FaultDrop, 0, id32(from), id32(to), 0, 0)
    }

    /// The capacity stall-breaker force-activated `node` (activation
    /// cost `cost`) on `proc`.
    #[inline]
    pub fn forced(proc: usize, node: usize, cost: u64) -> Self {
        Self::pod(Kind::Forced, 0, id32(proc), id32(node), 0, cost as i64)
    }

    /// Processor `proc` fail-stopped (killed by the fault schedule or
    /// declared dead by the lease protocol); `nodes_lost` of its nodes
    /// must be re-executed.
    #[inline]
    pub fn proc_lost(proc: usize, nodes_lost: usize) -> Self {
        Self::pod(Kind::ProcLost, 0, id32(proc), 0, 0, nodes_lost as i64)
    }

    /// Processor `proc` joined the running computation and received
    /// `migrated` rebalanced tasks.
    #[inline]
    pub fn proc_joined(proc: usize, migrated: usize) -> Self {
        Self::pod(Kind::ProcJoined, 0, id32(proc), 0, 0, migrated as i64)
    }

    /// Recovery reassigned the orphaned subtree rooted at `root` from the
    /// dead `from` to the adopting `to`.
    #[inline]
    pub fn subtree_reassigned(root: usize, from: usize, to: usize) -> Self {
        Self::pod(Kind::SubtreeReassigned, 0, id32(from), id32(root), id32(to), 0)
    }

    /// The malleable allocator granted `cores` cores to `node`'s compute
    /// task on `proc` while it believed `busy` peers still had tree work.
    #[inline]
    pub fn core_grant(proc: usize, node: usize, cores: u32, busy: u64) -> Self {
        Self::pod(Kind::CoreGrant, 0, id32(proc), id32(node), cores, busy as i64)
    }
}

/// One structured scheduling event in owned form — the builder/output
/// type. Emission and storage use the compact forms ([`CompactEvent`] /
/// [`SchedEventRecord`]); this enum is what tests construct and what
/// [`EventRef::to_owned`] decodes back to. Node and processor ids refer
/// to the assembly tree and machine of the recorded run.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedEvent {
    /// `entries` were allocated in `area` on `proc`, attributed to `node`.
    MemAlloc {
        /// Processor whose account grew.
        proc: usize,
        /// Node the allocation belongs to.
        node: usize,
        /// Which area.
        area: MemArea,
        /// Entries allocated.
        entries: u64,
    },
    /// `entries` were released from `area` on `proc` (node attribution as
    /// in [`SchedEvent::MemAlloc`]).
    MemFree {
        /// Processor whose account shrank.
        proc: usize,
        /// Node the release belongs to.
        node: usize,
        /// Which area.
        area: MemArea,
        /// Entries released.
        entries: u64,
    },
    /// `proc` activated front `node` (the owner-side decision).
    Activate {
        /// Activating (owner) processor.
        proc: usize,
        /// Activated node.
        node: usize,
        /// Node classification.
        class: FrontClass,
    },
    /// `proc` started computing its part of `node`.
    ComputeStart {
        /// Computing processor.
        proc: usize,
        /// Node computed.
        node: usize,
        /// Which part.
        role: TaskRole,
    },
    /// `proc` finished computing its part of `node`.
    ComputeEnd {
        /// Computing processor.
        proc: usize,
        /// Node computed.
        node: usize,
        /// Which part.
        role: TaskRole,
    },
    /// A type-2 master resolved its slave selection: the exact
    /// per-candidate metric vector it decided from (Algorithm 1 /
    /// workload baseline, indexed by processor), the *age* of its view of
    /// each processor (ticks since the last applied status refresh — the
    /// Figure 5 staleness), and the outcome.
    SlaveSelection {
        /// The master processor.
        master: usize,
        /// The type-2 node.
        node: usize,
        /// Metric per processor as the master believed it.
        metric: Vec<u64>,
        /// View age per processor (ticks since last status apply).
        view_age: Vec<Time>,
        /// Chosen blocks (empty = serialized on the master).
        picked: Vec<SlavePick>,
        /// Capacity re-selection rounds before the outcome (0 = first
        /// selection stood).
        rounds: u32,
        /// Whether the front fell back to serialize-on-master.
        serialized: bool,
    },
    /// A capacity re-selection dropped candidates whose projected memory
    /// would breach the cap.
    Reselect {
        /// The master processor.
        master: usize,
        /// The type-2 node being re-selected.
        node: usize,
        /// Candidates removed this round.
        dropped: Vec<usize>,
    },
    /// A pool (task-selection) decision on `proc`: Algorithm 2 / LIFO
    /// verdict over a non-empty pool.
    PoolDecision {
        /// Deciding processor.
        proc: usize,
        /// Ready tasks in the pool at decision time.
        depth: usize,
        /// Activated task (`None` = every ready task was deferred by the
        /// Algorithm-2 admissibility/capacity verdict).
        picked: Option<usize>,
    },
    /// A status broadcast left `from` (recorded once per broadcast, not
    /// per receiver).
    StatusSend {
        /// Broadcasting processor.
        from: usize,
        /// Which mechanism.
        kind: StatusKind,
        /// Signed payload value (delta or absolute level).
        value: i64,
    },
    /// A status message was applied at `to`, refreshing its view of
    /// `about`.
    StatusApply {
        /// Receiving processor.
        to: usize,
        /// Sender.
        from: usize,
        /// Processor whose view entry was refreshed.
        about: usize,
        /// Which mechanism.
        kind: StatusKind,
        /// Age of the replaced view entry (ticks since its last refresh).
        age: Time,
    },
    /// The fault injector dropped a status message.
    FaultDrop {
        /// Sender of the lost message.
        from: usize,
        /// Intended receiver.
        to: usize,
    },
    /// The capacity stall-breaker force-activated a deferred task.
    Forced {
        /// Processor forced to activate.
        proc: usize,
        /// Activated node.
        node: usize,
        /// Its activation cost (entries).
        cost: u64,
    },
    /// A processor fail-stopped and recovery reclaimed its work.
    ProcLost {
        /// The dead processor.
        proc: usize,
        /// Nodes whose (re-)execution the recovery plan scheduled.
        nodes_lost: usize,
    },
    /// A processor joined the running computation.
    ProcJoined {
        /// The joining processor.
        proc: usize,
        /// Ready tasks migrated to it by the rebalancer.
        migrated: usize,
    },
    /// Recovery reassigned an orphaned subtree to a surviving adopter.
    SubtreeReassigned {
        /// Root of the reassigned subtree.
        root: usize,
        /// The dead previous owner.
        from: usize,
        /// The adopting survivor.
        to: usize,
    },
    /// The malleable allocator granted a front more than its static
    /// share of cores (emitted only under `CoreAlloc::Malleable`).
    CoreGrant {
        /// The granting (and computing) processor.
        proc: usize,
        /// The front whose compute task received the grant.
        node: usize,
        /// Cores granted.
        cores: u32,
        /// Peers the grantor believed still had tree work.
        busy: u64,
    },
}

impl From<&SchedEvent> for CompactEvent {
    fn from(ev: &SchedEvent) -> Self {
        match *ev {
            SchedEvent::MemAlloc { proc, node, area, entries } => {
                CompactEvent::mem_alloc(proc, node, area, entries)
            }
            SchedEvent::MemFree { proc, node, area, entries } => {
                CompactEvent::mem_free(proc, node, area, entries)
            }
            SchedEvent::Activate { proc, node, class } => CompactEvent::activate(proc, node, class),
            SchedEvent::ComputeStart { proc, node, role } => {
                CompactEvent::compute_start(proc, node, role)
            }
            SchedEvent::ComputeEnd { proc, node, role } => {
                CompactEvent::compute_end(proc, node, role)
            }
            SchedEvent::SlaveSelection {
                master,
                node,
                ref metric,
                ref view_age,
                ref picked,
                rounds,
                serialized,
            } => CompactEvent::slave_selection(
                master, node, metric, view_age, picked, rounds, serialized,
            ),
            SchedEvent::Reselect { master, node, ref dropped } => {
                CompactEvent::reselect(master, node, dropped)
            }
            SchedEvent::PoolDecision { proc, depth, picked } => {
                CompactEvent::pool_decision(proc, depth, picked)
            }
            SchedEvent::StatusSend { from, kind, value } => {
                CompactEvent::status_send(from, kind, value)
            }
            SchedEvent::StatusApply { to, from, about, kind, age } => {
                CompactEvent::status_apply(to, from, about, kind, age)
            }
            SchedEvent::FaultDrop { from, to } => CompactEvent::fault_drop(from, to),
            SchedEvent::Forced { proc, node, cost } => CompactEvent::forced(proc, node, cost),
            SchedEvent::ProcLost { proc, nodes_lost } => CompactEvent::proc_lost(proc, nodes_lost),
            SchedEvent::ProcJoined { proc, migrated } => CompactEvent::proc_joined(proc, migrated),
            SchedEvent::SubtreeReassigned { root, from, to } => {
                CompactEvent::subtree_reassigned(root, from, to)
            }
            SchedEvent::CoreGrant { proc, node, cores, busy } => {
                CompactEvent::core_grant(proc, node, cores, busy)
            }
        }
    }
}

impl From<SchedEvent> for CompactEvent {
    fn from(ev: SchedEvent) -> Self {
        CompactEvent::from(&ev)
    }
}

/// The chosen slave blocks of a decoded [`EventRef::SlaveSelection`],
/// backed by `(proc, entries)` word pairs in the recording's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlavePicks<'a>(&'a [u64]);

impl<'a> SlavePicks<'a> {
    /// Number of chosen blocks.
    pub fn len(&self) -> usize {
        self.0.len() / 2
    }

    /// True when the selection chose nobody (serialized on the master).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The picks, in selection order.
    pub fn iter(&self) -> impl Iterator<Item = SlavePick> + 'a {
        self.0.chunks_exact(2).map(|w| SlavePick { proc: w[0] as usize, entries: w[1] })
    }
}

/// A processor list of a decoded [`EventRef::Reselect`], backed by words
/// in the recording's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcList<'a>(&'a [u64]);

impl<'a> ProcList<'a> {
    /// Number of processors in the list.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The processors, in recorded order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + 'a {
        self.0.iter().map(|&p| p as usize)
    }

    /// True when `p` is in the list.
    pub fn contains(&self, p: usize) -> bool {
        self.0.contains(&(p as u64))
    }
}

/// A decoded event borrowed from a [`Recording`]: the zero-copy view
/// consumers iterate. Variable-length fields are slices straight into
/// the recording's payload arena; [`EventRef::to_owned`] converts to the
/// owned [`SchedEvent`] form. Field meanings match [`SchedEvent`]
/// variant for variant.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // field docs live on the owned SchedEvent mirror
pub enum EventRef<'a> {
    /// See [`SchedEvent::MemAlloc`].
    MemAlloc { proc: usize, node: usize, area: MemArea, entries: u64 },
    /// See [`SchedEvent::MemFree`].
    MemFree { proc: usize, node: usize, area: MemArea, entries: u64 },
    /// See [`SchedEvent::Activate`].
    Activate { proc: usize, node: usize, class: FrontClass },
    /// See [`SchedEvent::ComputeStart`].
    ComputeStart { proc: usize, node: usize, role: TaskRole },
    /// See [`SchedEvent::ComputeEnd`].
    ComputeEnd { proc: usize, node: usize, role: TaskRole },
    /// See [`SchedEvent::SlaveSelection`].
    SlaveSelection {
        master: usize,
        node: usize,
        metric: &'a [u64],
        view_age: &'a [Time],
        picked: SlavePicks<'a>,
        rounds: u32,
        serialized: bool,
    },
    /// See [`SchedEvent::Reselect`].
    Reselect { master: usize, node: usize, dropped: ProcList<'a> },
    /// See [`SchedEvent::PoolDecision`].
    PoolDecision { proc: usize, depth: usize, picked: Option<usize> },
    /// See [`SchedEvent::StatusSend`].
    StatusSend { from: usize, kind: StatusKind, value: i64 },
    /// See [`SchedEvent::StatusApply`].
    StatusApply { to: usize, from: usize, about: usize, kind: StatusKind, age: Time },
    /// See [`SchedEvent::FaultDrop`].
    FaultDrop { from: usize, to: usize },
    /// See [`SchedEvent::Forced`].
    Forced { proc: usize, node: usize, cost: u64 },
    /// See [`SchedEvent::ProcLost`].
    ProcLost { proc: usize, nodes_lost: usize },
    /// See [`SchedEvent::ProcJoined`].
    ProcJoined { proc: usize, migrated: usize },
    /// See [`SchedEvent::SubtreeReassigned`].
    SubtreeReassigned { root: usize, from: usize, to: usize },
    /// See [`SchedEvent::CoreGrant`].
    CoreGrant { proc: usize, node: usize, cores: u32, busy: u64 },
}

impl EventRef<'_> {
    /// Decodes this borrowed view into the owned [`SchedEvent`] form
    /// (allocates for the variable-length variants).
    pub fn to_owned(&self) -> SchedEvent {
        match *self {
            EventRef::MemAlloc { proc, node, area, entries } => {
                SchedEvent::MemAlloc { proc, node, area, entries }
            }
            EventRef::MemFree { proc, node, area, entries } => {
                SchedEvent::MemFree { proc, node, area, entries }
            }
            EventRef::Activate { proc, node, class } => SchedEvent::Activate { proc, node, class },
            EventRef::ComputeStart { proc, node, role } => {
                SchedEvent::ComputeStart { proc, node, role }
            }
            EventRef::ComputeEnd { proc, node, role } => {
                SchedEvent::ComputeEnd { proc, node, role }
            }
            EventRef::SlaveSelection {
                master,
                node,
                metric,
                view_age,
                picked,
                rounds,
                serialized,
            } => SchedEvent::SlaveSelection {
                master,
                node,
                metric: metric.to_vec(),
                view_age: view_age.to_vec(),
                picked: picked.iter().collect(),
                rounds,
                serialized,
            },
            EventRef::Reselect { master, node, dropped } => {
                SchedEvent::Reselect { master, node, dropped: dropped.iter().collect() }
            }
            EventRef::PoolDecision { proc, depth, picked } => {
                SchedEvent::PoolDecision { proc, depth, picked }
            }
            EventRef::StatusSend { from, kind, value } => {
                SchedEvent::StatusSend { from, kind, value }
            }
            EventRef::StatusApply { to, from, about, kind, age } => {
                SchedEvent::StatusApply { to, from, about, kind, age }
            }
            EventRef::FaultDrop { from, to } => SchedEvent::FaultDrop { from, to },
            EventRef::Forced { proc, node, cost } => SchedEvent::Forced { proc, node, cost },
            EventRef::ProcLost { proc, nodes_lost } => SchedEvent::ProcLost { proc, nodes_lost },
            EventRef::ProcJoined { proc, migrated } => SchedEvent::ProcJoined { proc, migrated },
            EventRef::SubtreeReassigned { root, from, to } => {
                SchedEvent::SubtreeReassigned { root, from, to }
            }
            EventRef::CoreGrant { proc, node, cores, busy } => {
                SchedEvent::CoreGrant { proc, node, cores, busy }
            }
        }
    }
}

/// One iterated event of a [`Recording`]: its timestamp plus the decoded
/// borrowed view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventView<'a> {
    /// Virtual time of the event.
    pub at: Time,
    /// The decoded event.
    pub ev: EventRef<'a>,
}

/// Rows per preallocated page of the unbounded store (~640 KiB of
/// 40-byte rows): big enough to amortize page allocation to noise,
/// small enough that short recordings stay cheap.
const PAGE: usize = 1 << 14;

/// Ring mode: compact the payload arena once the garbage left behind by
/// evicted payloads exceeds the live payload bytes plus this slack.
const COMPACT_SLACK_WORDS: usize = 4096;

#[derive(Debug, Clone)]
enum Store {
    /// Unbounded: full pages are immutable, the last page has room.
    Paged(Vec<Vec<SchedEventRecord>>),
    /// Bounded: a preallocated circular buffer; `head` indexes the
    /// oldest retained row once the buffer has wrapped.
    Ring { buf: Vec<SchedEventRecord>, head: usize, cap: usize },
    /// Capacity 0: retain nothing, count everything.
    Null,
}

/// Columnar store of timestamped scheduling events. With `capacity:
/// None` it grows unbounded in preallocated pages (what `explain` needs:
/// peak attribution replays the full memory-event history); with a
/// capacity it keeps the most recent events in a preallocated circular
/// buffer and counts what it dropped, so long-running services can fly
/// with a bounded black box.
///
/// Variable-length payloads live in a per-recording `u64` arena,
/// referenced by `(offset, len)` from their rows; in ring mode the arena
/// is compacted when evictions leave too much garbage behind.
#[derive(Debug, Clone)]
pub struct Recording {
    store: Store,
    arena: Vec<u64>,
    /// Arena words referenced by retained rows (ring-mode compaction
    /// bookkeeping; equals `arena.len()` in paged mode).
    live_words: usize,
    dropped: u64,
}

impl Default for Recording {
    fn default() -> Self {
        Recording::new(None)
    }
}

impl PartialEq for Recording {
    /// Logical-stream equality: same retained `(at, event)` sequence and
    /// the same drop count, independent of page/ring internals.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self.dropped == other.dropped
            && self.events().zip(other.events()).all(|(x, y)| x == y)
    }
}

impl Recording {
    /// Empty recording; `capacity: None` = unbounded.
    pub fn new(capacity: Option<usize>) -> Self {
        let store = match capacity {
            None => Store::Paged(Vec::new()),
            Some(0) => Store::Null,
            Some(cap) => Store::Ring { buf: Vec::with_capacity(cap), head: 0, cap },
        };
        Recording { store, arena: Vec::new(), live_words: 0, dropped: 0 }
    }

    /// Appends an event, evicting the oldest when at capacity. The hot
    /// path: one branch on the (absent) payload, a 40-byte row store,
    /// and a page-boundary check.
    #[inline]
    pub fn record(&mut self, at: Time, event: impl Into<CompactEvent>) {
        let ce = event.into();
        if matches!(self.store, Store::Null) {
            self.dropped += 1;
            return;
        }
        let (payload_off, payload_len) = match &ce.payload {
            None => (0, 0),
            Some(words) => self.push_payload(words),
        };
        let row = SchedEventRecord {
            at,
            value: ce.value,
            payload_off,
            payload_len,
            a: ce.a,
            b: ce.b,
            c: ce.c,
            kind: ce.kind,
            tag: ce.tag,
        };
        match &mut self.store {
            Store::Paged(pages) => match pages.last_mut() {
                Some(page) if page.len() < PAGE => page.push(row),
                _ => {
                    let mut page = Vec::with_capacity(PAGE);
                    page.push(row);
                    pages.push(page);
                }
            },
            Store::Ring { buf, head, cap } => {
                if buf.len() < *cap {
                    buf.push(row);
                } else {
                    let evicted = std::mem::replace(&mut buf[*head], row);
                    *head = (*head + 1) % *cap;
                    self.live_words -= evicted.payload_len as usize;
                    self.dropped += 1;
                    if self.arena.len() > 2 * self.live_words + COMPACT_SLACK_WORDS {
                        self.compact_arena();
                    }
                }
            }
            Store::Null => unreachable!("handled above"),
        }
    }

    /// Bump-allocates a payload into the arena, returning its
    /// `(offset, len)` reference.
    fn push_payload(&mut self, words: &[u64]) -> (u32, u32) {
        let off = self.arena.len();
        assert!(
            off + words.len() <= u32::MAX as usize,
            "recording payload arena exceeds the u32 offset space"
        );
        self.arena.extend_from_slice(words);
        self.live_words += words.len();
        (off as u32, words.len() as u32)
    }

    /// Ring mode: rebuild the arena from the retained rows in logical
    /// order, dropping the garbage evicted payloads left behind. Offsets
    /// stay monotonically increasing, preserving the non-overlap
    /// invariant [`Recording::payload_refs_valid`] checks.
    fn compact_arena(&mut self) {
        let old = std::mem::take(&mut self.arena);
        let mut arena = Vec::with_capacity(self.live_words);
        if let Store::Ring { buf, head, .. } = &mut self.store {
            let n = buf.len();
            for i in 0..n {
                let row = &mut buf[(*head + i) % n];
                if row.payload_len > 0 {
                    let start = row.payload_off as usize;
                    let end = start + row.payload_len as usize;
                    row.payload_off = arena.len() as u32;
                    arena.extend_from_slice(&old[start..end]);
                }
            }
        }
        self.arena = arena;
    }

    fn row(&self, i: usize) -> &SchedEventRecord {
        match &self.store {
            Store::Paged(pages) => &pages[i / PAGE][i % PAGE],
            Store::Ring { buf, head, .. } => &buf[(head + i) % buf.len()],
            Store::Null => unreachable!("a null store has no rows"),
        }
    }

    fn decode(&self, r: &SchedEventRecord) -> EventRef<'_> {
        let pay = &self.arena[r.payload_off as usize..(r.payload_off + r.payload_len) as usize];
        match Kind::from_u8(r.kind) {
            Kind::MemAlloc => EventRef::MemAlloc {
                proc: r.a as usize,
                node: r.b as usize,
                area: MemArea::from_tag(r.tag),
                entries: r.value as u64,
            },
            Kind::MemFree => EventRef::MemFree {
                proc: r.a as usize,
                node: r.b as usize,
                area: MemArea::from_tag(r.tag),
                entries: r.value as u64,
            },
            Kind::Activate => EventRef::Activate {
                proc: r.a as usize,
                node: r.b as usize,
                class: FrontClass::from_tag(r.tag),
            },
            Kind::ComputeStart => EventRef::ComputeStart {
                proc: r.a as usize,
                node: r.b as usize,
                role: TaskRole::from_tag(r.tag),
            },
            Kind::ComputeEnd => EventRef::ComputeEnd {
                proc: r.a as usize,
                node: r.b as usize,
                role: TaskRole::from_tag(r.tag),
            },
            Kind::SlaveSelection => {
                let n = pay[0] as usize;
                let metric = &pay[1..1 + n];
                let view_age = &pay[1 + n..1 + 2 * n];
                let npicked = pay[1 + 2 * n] as usize;
                let picks = &pay[2 + 2 * n..2 + 2 * n + 2 * npicked];
                EventRef::SlaveSelection {
                    master: r.a as usize,
                    node: r.b as usize,
                    metric,
                    view_age,
                    picked: SlavePicks(picks),
                    rounds: r.c,
                    serialized: r.tag != 0,
                }
            }
            Kind::Reselect => EventRef::Reselect {
                master: r.a as usize,
                node: r.b as usize,
                dropped: ProcList(pay),
            },
            Kind::PoolDecision => EventRef::PoolDecision {
                proc: r.a as usize,
                depth: r.c as usize,
                picked: (r.value >= 0).then_some(r.value as usize),
            },
            Kind::StatusSend => EventRef::StatusSend {
                from: r.a as usize,
                kind: StatusKind::from_tag(r.tag),
                value: r.value,
            },
            Kind::StatusApply => EventRef::StatusApply {
                to: r.a as usize,
                from: r.c as usize,
                about: r.b as usize,
                kind: StatusKind::from_tag(r.tag),
                age: r.value as Time,
            },
            Kind::FaultDrop => EventRef::FaultDrop { from: r.a as usize, to: r.b as usize },
            Kind::Forced => {
                EventRef::Forced { proc: r.a as usize, node: r.b as usize, cost: r.value as u64 }
            }
            Kind::ProcLost => {
                EventRef::ProcLost { proc: r.a as usize, nodes_lost: r.value as usize }
            }
            Kind::ProcJoined => {
                EventRef::ProcJoined { proc: r.a as usize, migrated: r.value as usize }
            }
            Kind::SubtreeReassigned => EventRef::SubtreeReassigned {
                root: r.b as usize,
                from: r.a as usize,
                to: r.c as usize,
            },
            Kind::CoreGrant => EventRef::CoreGrant {
                proc: r.a as usize,
                node: r.b as usize,
                cores: r.c,
                busy: r.value as u64,
            },
        }
    }

    /// Recorded events, oldest first (time-ordered: the solver emits in
    /// virtual-time order), decoded on the fly into borrowed views.
    pub fn events(&self) -> Events<'_> {
        Events { rec: self, next: 0, len: self.len() }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Paged(pages) => match pages.split_last() {
                None => 0,
                Some((last, full)) => full.len() * PAGE + last.len(),
            },
            Store::Ring { buf, .. } => buf.len(),
            Store::Null => 0,
        }
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the ring (0 means the recording is complete —
    /// the precondition of exact peak attribution).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Payload words currently held by the arena (capacity diagnostics;
    /// includes ring-mode garbage awaiting compaction).
    pub fn arena_words(&self) -> usize {
        self.arena.len()
    }

    /// Structural soundness of the payload side table: every `(offset,
    /// len)` reference of a retained row is in-bounds, and in logical
    /// event order the references are non-overlapping with strictly
    /// increasing offsets (the bump-allocation discipline).
    pub fn payload_refs_valid(&self) -> bool {
        let mut prev_end = 0usize;
        for i in 0..self.len() {
            let r = self.row(i);
            if r.payload_len == 0 {
                continue;
            }
            let start = r.payload_off as usize;
            let end = start + r.payload_len as usize;
            if start < prev_end || end > self.arena.len() {
                return false;
            }
            prev_end = end;
        }
        true
    }

    /// Finalization check, called once by the drivers when a run
    /// completes: in debug builds, asserts [`Recording::payload_refs_valid`].
    pub fn debug_validate(&self) {
        debug_assert!(
            self.payload_refs_valid(),
            "recording payload references are out of bounds or overlapping"
        );
    }
}

/// Iterator over a [`Recording`]'s events (see [`Recording::events`]).
#[derive(Debug, Clone)]
pub struct Events<'a> {
    rec: &'a Recording,
    next: usize,
    len: usize,
}

impl<'a> Iterator for Events<'a> {
    type Item = EventView<'a>;

    fn next(&mut self) -> Option<EventView<'a>> {
        if self.next >= self.len {
            return None;
        }
        let row = self.rec.row(self.next);
        self.next += 1;
        Some(EventView { at: row.at, ev: self.rec.decode(row) })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Events<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: usize) -> SchedEvent {
        SchedEvent::MemAlloc { proc: 0, node, area: MemArea::Front, entries: 1 }
    }

    fn selection(node: usize) -> SchedEvent {
        SchedEvent::SlaveSelection {
            master: 1,
            node,
            metric: vec![10, 20, 30],
            view_age: vec![0, 5, 9],
            picked: vec![SlavePick { proc: 2, entries: 64 }, SlavePick { proc: 0, entries: 8 }],
            rounds: 2,
            serialized: false,
        }
    }

    #[test]
    fn unbounded_recording_keeps_everything() {
        let mut r = Recording::new(None);
        for k in 0..1000 {
            r.record(k, ev(k as usize));
        }
        assert_eq!(r.len(), 1000);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.events().next().unwrap().at, 0);
        r.debug_validate();
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut r = Recording::new(Some(3));
        for k in 0..5 {
            r.record(k, ev(k as usize));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let first = r.events().next().unwrap();
        assert_eq!(first.at, 2, "oldest two evicted");
        r.debug_validate();
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = Recording::new(Some(0));
        r.record(1, ev(0));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.arena_words(), 0, "a null store must not grow the arena");
    }

    #[test]
    fn every_variant_round_trips() {
        let originals = vec![
            ev(7),
            SchedEvent::MemFree { proc: 3, node: 9, area: MemArea::Stack, entries: 42 },
            SchedEvent::Activate { proc: 1, node: 4, class: FrontClass::Type2 },
            SchedEvent::ComputeStart { proc: 2, node: 5, role: TaskRole::Master },
            SchedEvent::ComputeEnd { proc: 2, node: 5, role: TaskRole::Slave },
            selection(11),
            SchedEvent::SlaveSelection {
                master: 0,
                node: 12,
                metric: vec![1, 2],
                view_age: vec![3, 4],
                picked: vec![],
                rounds: 0,
                serialized: true,
            },
            SchedEvent::Reselect { master: 2, node: 6, dropped: vec![1, 3, 5] },
            SchedEvent::Reselect { master: 2, node: 7, dropped: vec![] },
            SchedEvent::PoolDecision { proc: 0, depth: 4, picked: Some(17) },
            SchedEvent::PoolDecision { proc: 1, depth: 2, picked: None },
            SchedEvent::StatusSend { from: 3, kind: StatusKind::LoadDelta, value: -77 },
            SchedEvent::StatusApply {
                to: 0,
                from: 2,
                about: 1,
                kind: StatusKind::Assigned,
                age: 12345,
            },
            SchedEvent::FaultDrop { from: 1, to: 2 },
            SchedEvent::Forced { proc: 3, node: 8, cost: 999 },
            SchedEvent::ProcLost { proc: 5, nodes_lost: 14 },
            SchedEvent::ProcJoined { proc: 6, migrated: 2 },
            SchedEvent::SubtreeReassigned { root: 33, from: 5, to: 1 },
            SchedEvent::CoreGrant { proc: 3, node: 41, cores: 4, busy: 7 },
        ];
        let mut r = Recording::new(None);
        for (t, e) in originals.iter().enumerate() {
            r.record(t as Time, e.clone());
        }
        assert!(r.payload_refs_valid());
        let decoded: Vec<SchedEvent> = r.events().map(|te| te.ev.to_owned()).collect();
        assert_eq!(decoded, originals, "compact encode/decode must be lossless");
        for (t, te) in r.events().enumerate() {
            assert_eq!(te.at, t as Time);
        }
    }

    #[test]
    fn slave_selection_decodes_borrowed_slices() {
        let mut r = Recording::new(None);
        r.record(5, selection(11));
        let te = r.events().next().unwrap();
        match te.ev {
            EventRef::SlaveSelection {
                master,
                node,
                metric,
                view_age,
                picked,
                rounds,
                serialized,
            } => {
                assert_eq!((master, node, rounds, serialized), (1, 11, 2, false));
                assert_eq!(metric, &[10, 20, 30]);
                assert_eq!(view_age, &[0, 5, 9]);
                assert_eq!(picked.len(), 2);
                assert!(picked.iter().any(|p| p.proc == 2 && p.entries == 64));
            }
            other => panic!("expected SlaveSelection, got {other:?}"),
        }
    }

    #[test]
    fn ring_with_payloads_compacts_and_stays_valid() {
        // Small cap, many payload-carrying events: evictions leave arena
        // garbage behind and the compactor must reclaim it without
        // corrupting the retained references.
        let mut r = Recording::new(Some(4));
        for k in 0..200 {
            r.record(k, selection(k as usize));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 196);
        assert!(r.payload_refs_valid());
        // Arena stays bounded: 4 live payloads of 12 words each, plus
        // bounded slack.
        assert!(r.arena_words() <= 2 * 4 * 12 + COMPACT_SLACK_WORDS + 12);
        let nodes: Vec<usize> = r
            .events()
            .map(|te| match te.ev {
                EventRef::SlaveSelection { node, .. } => node,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(nodes, vec![196, 197, 198, 199]);
        // Every retained payload still decodes to the original content.
        for te in r.events() {
            match te.ev {
                EventRef::SlaveSelection { metric, .. } => assert_eq!(metric, &[10, 20, 30]),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn recordings_compare_by_logical_stream() {
        let mut a = Recording::new(None);
        let mut b = Recording::new(None);
        for k in 0..100 {
            a.record(k, ev(k as usize));
            b.record(k, ev(k as usize));
        }
        assert_eq!(a, b);
        b.record(100, ev(100));
        assert_ne!(a, b);
    }

    #[test]
    fn paged_store_crosses_page_boundaries() {
        let mut r = Recording::new(None);
        let n = PAGE * 2 + 17;
        for k in 0..n {
            r.record(k as Time, ev(k));
        }
        assert_eq!(r.len(), n);
        let last = r.events().last().unwrap();
        assert_eq!(last.at, (n - 1) as Time);
        assert_eq!(r.events().count(), n);
    }

    #[test]
    fn compact_event_is_small() {
        // The wire type must stay lean: POD header + niche-optimized
        // payload option. This is what Effect::Record embeds.
        assert!(
            std::mem::size_of::<CompactEvent>() <= 48,
            "CompactEvent grew to {} bytes",
            std::mem::size_of::<CompactEvent>()
        );
        assert_eq!(std::mem::size_of::<SchedEventRecord>(), 40);
    }
}
