//! Seeded, deterministic fault injection for the simulated network and
//! processors.
//!
//! The paper's central claim is that memory-based scheduling keeps the
//! per-processor stack peaks low *despite stale views*: every metric a
//! master reacts to travelled as a delayed message (Sections 4 and 5.1).
//! The [`FaultModel`] lets the experiments make the views arbitrarily
//! staler than the happy path — latency jitter, bounded extra delay (and
//! therefore reordering), straggler processors, and probabilistic loss of
//! *idempotent status messages* — while keeping every run a pure function
//! of `(inputs, seed)`.
//!
//! The model deliberately distinguishes two classes of traffic:
//!
//! * [`MsgClass::Status`] — monotone view updates (memory/load deltas,
//!   subtree peaks, predictions, assignment announcements). Losing one
//!   only makes a view staler; the factorization still terminates with
//!   the same factors.
//! * [`MsgClass::Control`] — protocol messages that carry obligations
//!   (task payloads, completions, contribution-block fetches). These are
//!   delayed and jittered but **never dropped**, so perturbed runs stay
//!   correct, only slower and more memory-hungry.
//!
//! The only exception is [`FaultModel::kill_network_after`], a testing
//! hook that silences the network entirely after a message budget — the
//! canonical way to force a stall and exercise the engine's no-progress
//! watchdog.

use crate::engine::Time;

/// Delivery class of a message, chosen by the protocol layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgClass {
    /// Carries an obligation; may be delayed, never dropped.
    Control,
    /// Idempotent view refresh; may be delayed *or dropped*.
    Status,
}

/// Configuration of the injected perturbations. All randomness derives
/// from `seed` through a counter-based stream, so two runs with the same
/// model and the same (deterministic) simulation are bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Seed of the perturbation stream.
    pub seed: u64,
    /// One-sided multiplicative latency jitter: each transfer time is
    /// scaled by a factor uniform in `[1, 1 + latency_jitter]`.
    pub latency_jitter: f64,
    /// Additional per-message delay, uniform in `0..=max_extra_delay`
    /// ticks. Distinct messages draw independently, so messages sent in
    /// one order can arrive in another (bounded reordering).
    pub max_extra_delay: Time,
    /// Probability of dropping a [`MsgClass::Status`] message.
    pub drop_status_prob: f64,
    /// Per-processor compute slowdown factors (`>= 1.0`); processors not
    /// listed run at nominal speed.
    pub stragglers: Vec<(usize, f64)>,
    /// Testing hook: after this many routed messages the network goes
    /// silent and drops **everything**, control included. Used to inject
    /// an artificial partition for watchdog tests; leave `None` otherwise.
    pub kill_network_after: Option<u64>,
    /// Processor-loss schedule: `(delivered-event index, proc)` pairs.
    /// When the driver's delivered-event counter reaches the index, the
    /// processor fail-stops: its pending and future events are discarded
    /// and (on the threads backend) its worker thread dies. Keyed by
    /// event index rather than time so both backends kill at the exact
    /// same point of the causal order.
    pub kill_at: Vec<(u64, usize)>,
    /// Processor-join schedule: `(delivered-event index, proc)` pairs.
    /// The processor exists from the start of the run but stays dormant
    /// (not believed alive, receives nothing) until the index is reached,
    /// then boots and is rebalanced into the pool.
    pub join_at: Vec<(u64, usize)>,
}

impl FaultModel {
    /// A model that perturbs nothing (useful as a base for struct update
    /// syntax).
    pub fn quiet(seed: u64) -> Self {
        FaultModel {
            seed,
            latency_jitter: 0.0,
            max_extra_delay: 0,
            drop_status_prob: 0.0,
            stragglers: Vec::new(),
            kill_network_after: None,
            kill_at: Vec::new(),
            join_at: Vec::new(),
        }
    }

    /// The graduated perturbation ladder of the robustness sweep:
    /// `level = 0` is the quiet model, and each unit of `level` adds 50%
    /// latency jitter, 250 ticks of possible extra delay, 12.5% status
    /// loss (capped at 60%), and slows processor 1 down by 0.5x.
    pub fn intensity(seed: u64, level: f64) -> Self {
        let level = level.max(0.0);
        FaultModel {
            seed,
            latency_jitter: 0.5 * level,
            max_extra_delay: (250.0 * level) as Time,
            drop_status_prob: (0.125 * level).min(0.6),
            stragglers: if level >= 3.0 { vec![(1, 1.0 + 0.5 * level)] } else { Vec::new() },
            kill_network_after: None,
            kill_at: Vec::new(),
            join_at: Vec::new(),
        }
    }

    /// True when the model cannot change any run (every knob neutral).
    pub fn is_quiet(&self) -> bool {
        self.is_message_quiet()
            && self.kill_network_after.is_none()
            && self.kill_at.is_empty()
            && self.join_at.is_empty()
    }

    /// True when *per-message* perturbations are all neutral: no jitter,
    /// delay, status loss, or stragglers. Membership faults (`kill_at`,
    /// `join_at`, `kill_network_after`) are allowed — they are discrete,
    /// deterministic schedule points rather than per-message noise, which
    /// is what the threads backend can execute faithfully.
    pub fn is_message_quiet(&self) -> bool {
        self.latency_jitter == 0.0
            && self.max_extra_delay == 0
            && self.drop_status_prob == 0.0
            && self.stragglers.iter().all(|&(_, f)| f <= 1.0)
    }

    /// Compute slowdown of processor `proc` (`1.0` when not a straggler).
    pub fn speed_factor(&self, proc: usize) -> f64 {
        self.stragglers.iter().find(|&&(p, _)| p == proc).map_or(1.0, |&(_, f)| f.max(1.0))
    }
}

/// Stateful injector: owns the deterministic perturbation stream for one
/// simulation run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    model: FaultModel,
    counter: u64,
    routed: u64,
    dropped: u64,
}

impl FaultInjector {
    /// Fresh injector for one run of `model`.
    pub fn new(model: FaultModel) -> Self {
        FaultInjector { model, counter: 0, routed: 0, dropped: 0 }
    }

    /// The model driving this injector.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// True once the `kill_network_after` budget is exhausted: every
    /// subsequent message (control included) is being dropped, so the run
    /// is partitioned and can only end in
    /// `SimError::Partitioned`-style diagnostics.
    pub fn partitioned(&self) -> bool {
        self.model.kill_network_after.is_some_and(|k| self.routed > k)
    }

    /// Next value of the counter-based stream in `[0, 1)`
    /// (splitmix64 finalizer — no state besides the counter).
    fn next_f64(&mut self) -> f64 {
        self.counter = self.counter.wrapping_add(1);
        let mut z = self.model.seed ^ self.counter.wrapping_mul(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Routes one message with nominal transfer time `base`: returns the
    /// perturbed transfer time, or `None` when the message is dropped.
    pub fn route(&mut self, base: Time, class: MsgClass) -> Option<Time> {
        self.routed += 1;
        if self.model.kill_network_after.is_some_and(|k| self.routed > k) {
            self.dropped += 1;
            return None;
        }
        if class == MsgClass::Status
            && self.model.drop_status_prob > 0.0
            && self.next_f64() < self.model.drop_status_prob
        {
            self.dropped += 1;
            return None;
        }
        let mut t = base;
        if self.model.latency_jitter > 0.0 {
            let factor = 1.0 + self.model.latency_jitter * self.next_f64();
            t = (t as f64 * factor).round() as Time;
        }
        if self.model.max_extra_delay > 0 {
            let span = self.model.max_extra_delay + 1;
            t += (self.next_f64() * span as f64) as Time;
        }
        Some(t)
    }

    /// Compute slowdown of processor `proc` (forwarded from the model).
    pub fn speed_factor(&self, proc: usize) -> f64 {
        self.model.speed_factor(proc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_model_is_transparent() {
        let mut inj = FaultInjector::new(FaultModel::quiet(7));
        for bytes in [0u64, 1, 20, 1000] {
            assert_eq!(inj.route(bytes, MsgClass::Status), Some(bytes));
            assert_eq!(inj.route(bytes, MsgClass::Control), Some(bytes));
        }
        assert_eq!(inj.dropped(), 0);
        assert!(FaultModel::quiet(7).is_quiet());
        assert!(!FaultModel::intensity(7, 2.0).is_quiet());
    }

    #[test]
    fn same_seed_same_stream() {
        let model = FaultModel::intensity(42, 3.0);
        let mut a = FaultInjector::new(model.clone());
        let mut b = FaultInjector::new(model);
        for i in 0..1000u64 {
            let class = if i % 3 == 0 { MsgClass::Control } else { MsgClass::Status };
            assert_eq!(a.route(20 + i % 7, class), b.route(20 + i % 7, class));
        }
    }

    #[test]
    fn control_messages_are_never_dropped() {
        let model = FaultModel { drop_status_prob: 1.0, ..FaultModel::quiet(3) };
        let mut inj = FaultInjector::new(model);
        for _ in 0..100 {
            assert!(inj.route(20, MsgClass::Control).is_some());
            assert!(inj.route(20, MsgClass::Status).is_none());
        }
        assert_eq!(inj.dropped(), 100);
    }

    #[test]
    fn delays_are_bounded() {
        let model =
            FaultModel { latency_jitter: 0.5, max_extra_delay: 100, ..FaultModel::quiet(11) };
        let mut inj = FaultInjector::new(model);
        for _ in 0..1000 {
            let t = inj.route(40, MsgClass::Control).unwrap();
            assert!((40..=40 + 20 + 100).contains(&t), "t={t}");
        }
    }

    #[test]
    fn kill_switch_silences_everything() {
        let model = FaultModel { kill_network_after: Some(5), ..FaultModel::quiet(1) };
        let mut inj = FaultInjector::new(model);
        for i in 0..10u64 {
            let was_partitioned = inj.partitioned();
            assert_eq!(was_partitioned, i > 5, "before message {i}");
            let routed = inj.route(20, MsgClass::Control).is_some();
            assert_eq!(routed, i < 5, "message {i}");
        }
        assert!(inj.partitioned());
    }

    #[test]
    fn membership_schedules_break_quietness_but_not_message_quietness() {
        let mut m = FaultModel::quiet(3);
        assert!(m.is_quiet() && m.is_message_quiet());
        m.kill_at = vec![(100, 2)];
        assert!(!m.is_quiet(), "a kill schedule changes the run");
        assert!(m.is_message_quiet(), "but perturbs no individual message");
        let mut j = FaultModel::quiet(3);
        j.join_at = vec![(50, 1)];
        assert!(!j.is_quiet() && j.is_message_quiet());
        let noisy = FaultModel::intensity(3, 2.0);
        assert!(!noisy.is_message_quiet());
    }

    #[test]
    fn stragglers_slow_only_their_processor() {
        let model = FaultModel { stragglers: vec![(2, 2.5)], ..FaultModel::quiet(0) };
        assert_eq!(model.speed_factor(0), 1.0);
        assert_eq!(model.speed_factor(2), 2.5);
        // Sub-1.0 factors are clamped (stragglers only slow down).
        let m2 = FaultModel { stragglers: vec![(1, 0.25)], ..FaultModel::quiet(0) };
        assert_eq!(m2.speed_factor(1), 1.0);
    }
}
