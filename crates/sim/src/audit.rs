//! Protocol auditing: replay a [`Recording`] and verify the solver's
//! conservation and ordering invariants, reporting violations as typed
//! findings.
//!
//! The flight recorder captures every memory movement, compute span,
//! activation, status application, and membership change. Those streams
//! obey invariants that hold for *every* correct run — fault-free or
//! not — independent of strategy, backend, or matrix:
//!
//! * **time order** — events are recorded with non-decreasing
//!   timestamps;
//! * **account balance** — on every (processor, node, area) memory
//!   account the `Free`s never exceed the `Alloc`s mid-run, and every
//!   account of a surviving processor drains to zero by completion
//!   (per-account balance on the CB stack *is* contribution-block
//!   conservation: nothing is consumed that was never produced, and
//!   nothing survives the run);
//! * **span pairing** — every `ComputeEnd` closes a matching
//!   `ComputeStart` on the same (processor, node, role), and no span is
//!   left open at the end of the recording;
//! * **activation epochs** — a front is activated at most once per
//!   membership epoch; re-activation is legal only after a processor
//!   loss or subtree reassignment made re-execution necessary;
//! * **membership fencing** — a processor declared lost does not start
//!   compute or activate fronts, and its status traffic is fenced (no
//!   `StatusApply` from a dead processor until it rejoins).
//!
//! [`audit_recording`] checks all of the above in one pass and returns
//! the violations as [`Finding`] values whose `Display` names the
//! processor, node, and area involved — machine-checkable in CI, and
//! readable when a human has to chase one.

use crate::engine::Time;
use crate::recorder::{EventRef, MemArea, Recording};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One audit violation, carrying enough context to locate the defect in
/// the recording without re-running the audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// The recording dropped events (bounded ring overflow), so balance
    /// and pairing checks are not conclusive for this run.
    Truncated {
        /// Events evicted from the ring before iteration.
        dropped: u64,
    },
    /// The recording's internal payload references failed validation —
    /// the store itself is corrupt.
    CorruptPayloads,
    /// An event was recorded with a timestamp earlier than its
    /// predecessor.
    TimeRegression {
        /// Zero-based index of the offending event.
        index: usize,
        /// Timestamp of the preceding event.
        prev: Time,
        /// The regressed timestamp.
        at: Time,
    },
    /// An event names a processor outside `0..nprocs`.
    ProcOutOfRange {
        /// When the event was recorded.
        at: Time,
        /// The out-of-range processor id.
        proc: usize,
        /// The processor count the audit was asked to check against.
        nprocs: usize,
    },
    /// A `Free` exceeded the outstanding balance on its account.
    NegativeBalance {
        /// When the offending free happened.
        at: Time,
        /// Account processor.
        proc: usize,
        /// Account node.
        node: usize,
        /// Account area.
        area: MemArea,
        /// Entries the free tried to return.
        freed: u64,
        /// Entries actually outstanding on the account.
        outstanding: u64,
    },
    /// An account of a surviving processor still holds entries at the
    /// end of the recording — an `Alloc` whose `Free` never happened.
    LeakedAllocation {
        /// Account processor.
        proc: usize,
        /// Account node.
        node: usize,
        /// Account area.
        area: MemArea,
        /// Entries never freed.
        entries: u64,
    },
    /// A `ComputeEnd` had no open `ComputeStart` on its
    /// (processor, node, role).
    UnmatchedComputeEnd {
        /// When the stray end was recorded.
        at: Time,
        /// Processor of the span.
        proc: usize,
        /// Node of the span.
        node: usize,
    },
    /// A `ComputeStart` on a surviving processor was never closed.
    DanglingComputeStart {
        /// Processor of the span.
        proc: usize,
        /// Node of the span.
        node: usize,
    },
    /// A front was activated twice within the same membership epoch
    /// (no processor loss or reassignment justified re-execution).
    DuplicateActivation {
        /// When the second activation was recorded.
        at: Time,
        /// The re-activated node.
        node: usize,
        /// Processor of the first activation.
        first_proc: usize,
        /// Processor of the duplicate activation.
        second_proc: usize,
    },
    /// A `StatusApply` arrived from a processor already declared lost —
    /// stale traffic that epoch fencing should have dropped.
    StaleStatusAfterLoss {
        /// When the stale apply was recorded.
        at: Time,
        /// The dead sender.
        from: usize,
        /// The processor that applied the stale view.
        to: usize,
    },
    /// A processor declared lost started compute or activated a front
    /// without rejoining first.
    ActivityFromDeadProc {
        /// When the impossible activity was recorded.
        at: Time,
        /// The dead processor.
        proc: usize,
        /// The node it touched.
        node: usize,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::Truncated { dropped } => {
                write!(f, "recording truncated: {dropped} events dropped; audit inconclusive")
            }
            Finding::CorruptPayloads => {
                write!(f, "recording payload references are corrupt")
            }
            Finding::TimeRegression { index, prev, at } => {
                write!(f, "event {index} at t={at} recorded after t={prev}: time went backwards")
            }
            Finding::ProcOutOfRange { at, proc, nprocs } => {
                write!(f, "t={at}: proc {proc} out of range (nprocs={nprocs})")
            }
            Finding::NegativeBalance { at, proc, node, area, freed, outstanding } => {
                write!(
                    f,
                    "t={at}: proc {proc} freed {freed} entries of node {node}/{} with only \
                     {outstanding} outstanding",
                    area.name()
                )
            }
            Finding::LeakedAllocation { proc, node, area, entries } => {
                write!(
                    f,
                    "proc {proc} leaked {entries} entries of node {node}/{}: alloc without free",
                    area.name()
                )
            }
            Finding::UnmatchedComputeEnd { at, proc, node } => {
                write!(f, "t={at}: proc {proc} ended a compute span on node {node} it never began")
            }
            Finding::DanglingComputeStart { proc, node } => {
                write!(f, "proc {proc} never ended its compute span on node {node}")
            }
            Finding::DuplicateActivation { at, node, first_proc, second_proc } => {
                write!(
                    f,
                    "t={at}: node {node} activated on proc {second_proc} but already active on \
                     proc {first_proc} in the same membership epoch"
                )
            }
            Finding::StaleStatusAfterLoss { at, from, to } => {
                write!(
                    f,
                    "t={at}: proc {to} applied status from proc {from} after its loss was \
                     declared (stale traffic not fenced)"
                )
            }
            Finding::ActivityFromDeadProc { at, proc, node } => {
                write!(f, "t={at}: dead proc {proc} touched node {node} without rejoining")
            }
        }
    }
}

/// Replays `rec` and returns every invariant violation found.
///
/// An empty vector certifies that the recording is internally
/// consistent: memory accounts balance, compute spans pair, activations
/// respect membership epochs, and traffic from dead processors was
/// fenced. Processors that were lost and never rejoined are exempt from
/// the end-of-run balance and span checks — their outstanding state is
/// exactly what recovery reclaims out-of-band.
pub fn audit_recording(nprocs: usize, rec: &Recording) -> Vec<Finding> {
    let mut findings = Vec::new();
    if rec.dropped() > 0 {
        findings.push(Finding::Truncated { dropped: rec.dropped() });
    }
    if !rec.payload_refs_valid() {
        findings.push(Finding::CorruptPayloads);
        return findings;
    }

    // Outstanding entries per (proc, node, area) account.
    let mut balance: HashMap<(usize, usize, MemArea), u64> = HashMap::new();
    // Open compute spans per (proc, node) — a count, since role nesting
    // on one node is legal for master fronts.
    let mut open_spans: HashMap<(usize, usize), u32> = HashMap::new();
    // node -> (owner proc, membership epoch of the activation).
    let mut activated: HashMap<usize, (usize, u64)> = HashMap::new();
    // Bumped on every membership change; re-activation across epochs is
    // legitimate re-execution.
    let mut epoch = 0u64;
    let mut dead: HashSet<usize> = HashSet::new();
    let mut ever_lost: HashSet<usize> = HashSet::new();
    let mut prev_at: Time = 0;

    for (index, view) in rec.events().enumerate() {
        let at = view.at;
        if at < prev_at {
            findings.push(Finding::TimeRegression { index, prev: prev_at, at });
        }
        prev_at = prev_at.max(at);

        let check_proc = |findings: &mut Vec<Finding>, p: usize| {
            if p >= nprocs {
                findings.push(Finding::ProcOutOfRange { at, proc: p, nprocs });
            }
        };
        match view.ev {
            EventRef::MemAlloc { proc, node, area, entries } => {
                check_proc(&mut findings, proc);
                *balance.entry((proc, node, area)).or_default() += entries;
            }
            EventRef::MemFree { proc, node, area, entries } => {
                check_proc(&mut findings, proc);
                let slot = balance.entry((proc, node, area)).or_default();
                if *slot < entries {
                    findings.push(Finding::NegativeBalance {
                        at,
                        proc,
                        node,
                        area,
                        freed: entries,
                        outstanding: *slot,
                    });
                    *slot = 0;
                } else {
                    *slot -= entries;
                }
            }
            EventRef::ComputeStart { proc, node, .. } => {
                check_proc(&mut findings, proc);
                if dead.contains(&proc) {
                    findings.push(Finding::ActivityFromDeadProc { at, proc, node });
                }
                *open_spans.entry((proc, node)).or_default() += 1;
            }
            EventRef::ComputeEnd { proc, node, .. } => {
                check_proc(&mut findings, proc);
                let slot = open_spans.entry((proc, node)).or_default();
                if *slot == 0 {
                    findings.push(Finding::UnmatchedComputeEnd { at, proc, node });
                } else {
                    *slot -= 1;
                }
            }
            EventRef::Activate { proc, node, .. } => {
                check_proc(&mut findings, proc);
                if dead.contains(&proc) {
                    findings.push(Finding::ActivityFromDeadProc { at, proc, node });
                }
                match activated.get(&node) {
                    Some(&(first_proc, e)) if e == epoch => {
                        findings.push(Finding::DuplicateActivation {
                            at,
                            node,
                            first_proc,
                            second_proc: proc,
                        });
                    }
                    _ => {
                        activated.insert(node, (proc, epoch));
                    }
                }
            }
            EventRef::StatusApply { to, from, .. } => {
                check_proc(&mut findings, to);
                if dead.contains(&from) {
                    findings.push(Finding::StaleStatusAfterLoss { at, from, to });
                }
            }
            EventRef::ProcLost { proc, .. } => {
                check_proc(&mut findings, proc);
                dead.insert(proc);
                ever_lost.insert(proc);
                epoch += 1;
            }
            EventRef::ProcJoined { proc, .. } => {
                check_proc(&mut findings, proc);
                dead.remove(&proc);
                epoch += 1;
            }
            EventRef::SubtreeReassigned { .. } => epoch += 1,
            // Selection, pool, status-send, fault, and forced events are
            // context, not conserved quantities.
            _ => {}
        }
    }

    // End-of-run drains. Dead processors' outstanding state is reclaimed
    // out-of-band by recovery; everyone else must balance to zero.
    let mut leaks: Vec<Finding> = balance
        .into_iter()
        .filter(|&((proc, _, _), left)| left > 0 && !dead.contains(&proc))
        .map(|((proc, node, area), entries)| Finding::LeakedAllocation {
            proc,
            node,
            area,
            entries,
        })
        .collect();
    leaks.sort_by_key(|fnd| match *fnd {
        Finding::LeakedAllocation { proc, node, area, .. } => (proc, node, area as u8),
        _ => unreachable!(),
    });
    findings.extend(leaks);

    let mut dangling: Vec<Finding> = open_spans
        .into_iter()
        .filter(|&((proc, _), open)| open > 0 && !dead.contains(&proc))
        .map(|((proc, node), _)| Finding::DanglingComputeStart { proc, node })
        .collect();
    dangling.sort_by_key(|fnd| match *fnd {
        Finding::DanglingComputeStart { proc, node } => (proc, node),
        _ => unreachable!(),
    });
    findings.extend(dangling);

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FrontClass, SchedEvent, StatusKind, TaskRole};

    fn alloc(proc: usize, node: usize, area: MemArea, entries: u64) -> SchedEvent {
        SchedEvent::MemAlloc { proc, node, area, entries }
    }
    fn free(proc: usize, node: usize, area: MemArea, entries: u64) -> SchedEvent {
        SchedEvent::MemFree { proc, node, area, entries }
    }

    #[test]
    fn clean_recording_has_no_findings() {
        let mut rec = Recording::new(None);
        rec.record(0, alloc(0, 1, MemArea::Front, 10));
        rec.record(0, SchedEvent::Activate { proc: 0, node: 1, class: FrontClass::Type1 });
        rec.record(0, SchedEvent::ComputeStart { proc: 0, node: 1, role: TaskRole::Elim });
        rec.record(5, SchedEvent::ComputeEnd { proc: 0, node: 1, role: TaskRole::Elim });
        rec.record(5, alloc(0, 1, MemArea::Stack, 4));
        rec.record(5, free(0, 1, MemArea::Front, 10));
        rec.record(9, free(0, 1, MemArea::Stack, 4));
        assert_eq!(audit_recording(2, &rec), vec![]);
    }

    #[test]
    fn dropped_free_names_proc_node_area() {
        let mut rec = Recording::new(None);
        rec.record(0, alloc(3, 7, MemArea::Stack, 42));
        // The matching free never happens.
        let f = audit_recording(4, &rec);
        assert_eq!(
            f,
            vec![Finding::LeakedAllocation { proc: 3, node: 7, area: MemArea::Stack, entries: 42 }]
        );
        let msg = f[0].to_string();
        assert!(msg.contains("proc 3"), "{msg}");
        assert!(msg.contains("node 7"), "{msg}");
        assert!(msg.contains("stack"), "{msg}");
    }

    #[test]
    fn overdrawn_account_is_negative_balance() {
        let mut rec = Recording::new(None);
        rec.record(0, alloc(1, 2, MemArea::Front, 5));
        rec.record(3, free(1, 2, MemArea::Front, 8));
        let f = audit_recording(2, &rec);
        assert_eq!(
            f,
            vec![Finding::NegativeBalance {
                at: 3,
                proc: 1,
                node: 2,
                area: MemArea::Front,
                freed: 8,
                outstanding: 5
            }]
        );
    }

    #[test]
    fn unmatched_and_dangling_spans_are_found() {
        let mut rec = Recording::new(None);
        rec.record(1, SchedEvent::ComputeEnd { proc: 0, node: 4, role: TaskRole::Slave });
        rec.record(2, SchedEvent::ComputeStart { proc: 1, node: 5, role: TaskRole::Elim });
        let f = audit_recording(2, &rec);
        assert!(f.contains(&Finding::UnmatchedComputeEnd { at: 1, proc: 0, node: 4 }));
        assert!(f.contains(&Finding::DanglingComputeStart { proc: 1, node: 5 }));
    }

    #[test]
    fn reactivation_needs_a_membership_epoch() {
        let mut rec = Recording::new(None);
        rec.record(0, SchedEvent::Activate { proc: 0, node: 3, class: FrontClass::Type1 });
        rec.record(4, SchedEvent::Activate { proc: 1, node: 3, class: FrontClass::Type1 });
        let f = audit_recording(2, &rec);
        assert_eq!(
            f,
            vec![Finding::DuplicateActivation { at: 4, node: 3, first_proc: 0, second_proc: 1 }]
        );

        // The same re-activation after a ProcLost is legitimate
        // re-execution, not a duplicate.
        let mut rec = Recording::new(None);
        rec.record(0, SchedEvent::Activate { proc: 0, node: 3, class: FrontClass::Type1 });
        rec.record(2, SchedEvent::ProcLost { proc: 0, nodes_lost: 1 });
        rec.record(4, SchedEvent::Activate { proc: 1, node: 3, class: FrontClass::Type1 });
        assert_eq!(audit_recording(2, &rec), vec![]);
    }

    #[test]
    fn dead_proc_traffic_and_activity_are_fenced() {
        let mut rec = Recording::new(None);
        rec.record(0, SchedEvent::ProcLost { proc: 2, nodes_lost: 0 });
        rec.record(
            1,
            SchedEvent::StatusApply {
                to: 0,
                from: 2,
                about: 2,
                kind: StatusKind::MemDelta,
                age: 5,
            },
        );
        rec.record(2, SchedEvent::ComputeStart { proc: 2, node: 9, role: TaskRole::Elim });
        let f = audit_recording(4, &rec);
        assert!(f.contains(&Finding::StaleStatusAfterLoss { at: 1, from: 2, to: 0 }));
        assert!(f.contains(&Finding::ActivityFromDeadProc { at: 2, proc: 2, node: 9 }));

        // After a rejoin both become legal again.
        let mut rec = Recording::new(None);
        rec.record(0, SchedEvent::ProcLost { proc: 2, nodes_lost: 0 });
        rec.record(3, SchedEvent::ProcJoined { proc: 2, migrated: 0 });
        rec.record(
            4,
            SchedEvent::StatusApply {
                to: 0,
                from: 2,
                about: 2,
                kind: StatusKind::MemDelta,
                age: 1,
            },
        );
        assert_eq!(audit_recording(4, &rec), vec![]);
    }

    #[test]
    fn lost_procs_outstanding_state_is_exempt_from_leak_checks() {
        let mut rec = Recording::new(None);
        rec.record(0, alloc(1, 6, MemArea::Front, 12));
        rec.record(0, SchedEvent::ComputeStart { proc: 1, node: 6, role: TaskRole::Elim });
        rec.record(2, SchedEvent::ProcLost { proc: 1, nodes_lost: 1 });
        assert_eq!(audit_recording(2, &rec), vec![]);
    }

    #[test]
    fn time_regression_and_range_are_flagged() {
        let mut rec = Recording::new(None);
        rec.record(5, alloc(0, 1, MemArea::Front, 1));
        rec.record(3, free(0, 1, MemArea::Front, 1));
        rec.record(3, free(9, 1, MemArea::Front, 0));
        let f = audit_recording(2, &rec);
        assert!(f.contains(&Finding::TimeRegression { index: 1, prev: 5, at: 3 }));
        assert!(f.contains(&Finding::ProcOutOfRange { at: 3, proc: 9, nprocs: 2 }));
    }

    #[test]
    fn truncated_rings_are_inconclusive() {
        let mut rec = Recording::new(Some(4));
        for i in 0..16u64 {
            rec.record(i, alloc(0, i as usize, MemArea::Front, 1));
        }
        let f = audit_recording(1, &rec);
        assert!(matches!(f[0], Finding::Truncated { dropped } if dropped > 0));
    }
}
