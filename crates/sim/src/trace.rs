//! Time-series recording for memory-evolution figures.

use crate::engine::Time;

/// One sample of a stepwise time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSample {
    /// Time of the change.
    pub at: Time,
    /// New value (entries).
    pub value: u64,
    /// Largest value observed at this instant. Several changes can land
    /// at the same virtual time (e.g. a front allocated and its children's
    /// CBs popped in one assembly step); `value` keeps the post-instant
    /// state while `high` preserves the transient within-instant peak so
    /// [`Trace::max`] agrees with the accounting peak.
    pub high: u64,
}

impl From<(Time, u64)> for TraceSample {
    fn from((at, value): (Time, u64)) -> Self {
        TraceSample { at, value, high: value }
    }
}

/// A stepwise time series (value changes at the recorded instants and
/// holds in between), used to plot active-memory evolution per processor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    samples: Vec<TraceSample>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample; consecutive samples at the same instant collapse
    /// to the last value, but the within-instant maximum is retained in
    /// [`TraceSample::high`] so transient peaks are never lost.
    pub fn push(&mut self, at: Time, value: u64) {
        if let Some(last) = self.samples.last_mut() {
            if last.at == at {
                last.value = value;
                last.high = last.high.max(value);
                return;
            }
        }
        self.samples.push(TraceSample { at, value, high: value });
    }

    /// All samples, time-ordered.
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// Value at time `t` (0 before the first sample).
    pub fn value_at(&self, t: Time) -> u64 {
        match self.samples.binary_search_by_key(&t, |s| s.at) {
            Ok(i) => self.samples[i].value,
            Err(0) => 0,
            Err(i) => self.samples[i - 1].value,
        }
    }

    /// Maximum recorded value, including within-instant transients (so
    /// this matches `ProcMemory::active_peak()` exactly).
    pub fn max(&self) -> u64 {
        self.samples.iter().map(|s| s.high).max().unwrap_or(0)
    }

    /// Resamples the series on `steps` uniform instants over `[0, horizon]`
    /// (plot helper for the figure binaries).
    pub fn resample(&self, horizon: Time, steps: usize) -> Vec<(Time, u64)> {
        (0..=steps)
            .map(|k| {
                let t = horizon * k as u64 / steps.max(1) as u64;
                (t, self.value_at(t))
            })
            .collect()
    }

    /// Writes the step series as `time,value` CSV lines (plot-ready).
    pub fn write_csv<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        writeln!(w, "time,entries")?;
        for s in &self.samples {
            writeln!(w, "{},{}", s.at, s.value)?;
        }
        Ok(())
    }
}

/// Writes several processors' traces as one wide CSV
/// (`time,p0,p1,...`), resampled on `steps` uniform instants.
pub fn write_traces_csv<W: std::io::Write>(
    w: &mut W,
    traces: &[Trace],
    horizon: Time,
    steps: usize,
) -> std::io::Result<()> {
    write!(w, "time")?;
    for p in 0..traces.len() {
        write!(w, ",p{p}")?;
    }
    writeln!(w)?;
    for k in 0..=steps {
        let t = horizon * k as u64 / steps.max(1) as u64;
        write!(w, "{t}")?;
        for tr in traces {
            write!(w, ",{}", tr.value_at(t))?;
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stepwise_lookup() {
        let mut t = Trace::new();
        t.push(10, 5);
        t.push(20, 9);
        assert_eq!(t.value_at(0), 0);
        assert_eq!(t.value_at(10), 5);
        assert_eq!(t.value_at(15), 5);
        assert_eq!(t.value_at(20), 9);
        assert_eq!(t.value_at(100), 9);
        assert_eq!(t.max(), 9);
    }

    #[test]
    fn same_instant_collapses() {
        let mut t = Trace::new();
        t.push(3, 1);
        t.push(3, 7);
        assert_eq!(t.samples().len(), 1);
        assert_eq!(t.value_at(3), 7);
    }

    #[test]
    fn same_instant_transient_peak_is_kept() {
        let mut t = Trace::new();
        // A front allocates (peak 12), then two child CBs pop, all at t=3:
        // the post-instant value is 5 but the transient maximum is 12.
        t.push(3, 12);
        t.push(3, 8);
        t.push(3, 5);
        assert_eq!(t.samples().len(), 1);
        assert_eq!(t.value_at(3), 5, "stepwise lookup sees the post-instant state");
        assert_eq!(t.samples()[0].high, 12);
        assert_eq!(t.max(), 12, "max must not lose the transient peak");
    }

    #[test]
    fn resample_uniform_grid() {
        let mut t = Trace::new();
        t.push(0, 2);
        t.push(50, 4);
        let pts = t.resample(100, 4);
        assert_eq!(pts, vec![(0, 2), (25, 2), (50, 4), (75, 4), (100, 4)]);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Trace::new();
        t.push(1, 10);
        t.push(5, 0);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "time,entries\n1,10\n5,0\n");
    }

    #[test]
    fn wide_csv_has_one_column_per_proc() {
        let mut a = Trace::new();
        a.push(0, 1);
        let mut b = Trace::new();
        b.push(10, 2);
        let mut buf = Vec::new();
        write_traces_csv(&mut buf, &[a, b], 10, 2).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "time,p0,p1\n0,1,0\n5,1,0\n10,1,2\n");
    }
}
