//! Message-passing cost model.

use crate::engine::{EventPayload, EventQueue, Time};

/// Linear latency + bandwidth network model (the classic α-β model):
/// a message of `bytes` arrives `latency + bytes / bytes_per_tick` after
/// it is sent. All pairs are equidistant, like a switched SP system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkModel {
    /// Fixed per-message latency (ticks).
    pub latency: Time,
    /// Bandwidth (bytes per tick); `u64::MAX` means infinite.
    pub bytes_per_tick: u64,
}

impl NetworkModel {
    /// IBM-SP-like defaults with 1 tick = 1 µs: ~20 µs latency,
    /// ~350 MB/s ≈ 350 bytes/µs.
    pub fn sp_like() -> Self {
        NetworkModel { latency: 20, bytes_per_tick: 350 }
    }

    /// Zero-cost network (useful to isolate scheduling effects in tests).
    pub fn instantaneous() -> Self {
        NetworkModel { latency: 0, bytes_per_tick: u64::MAX }
    }

    /// Transfer time of a message of `bytes`. Partial ticks cost a full
    /// tick (`div_ceil`): a 16-byte status broadcast at 350 B/tick takes
    /// `latency + 1`, not `latency + 0` — on-the-wire bytes are never
    /// free just because they fit inside one bandwidth quantum.
    pub fn transfer_time(&self, bytes: u64) -> Time {
        if self.bytes_per_tick == u64::MAX {
            self.latency
        } else {
            self.latency + bytes.div_ceil(self.bytes_per_tick.max(1))
        }
    }

    /// Sends `msg` of `bytes` from `from` to `to` through `sim` (any
    /// [`EventQueue`] engine).
    ///
    /// Self-sends are delivered after the latency too (MUMPS treats local
    /// task messages uniformly), keeping event ordering uniform.
    pub fn send<M: Clone, Q: EventQueue<M>>(
        &self,
        sim: &mut Q,
        from: usize,
        to: usize,
        msg: M,
        bytes: u64,
    ) {
        sim.schedule(self.transfer_time(bytes), EventPayload::Message { from, to, msg });
    }

    /// Broadcasts clones of `msg` to every processor in `0..nprocs`
    /// except `from` (the usual "inform the others" pattern). Delivery
    /// order and times are exactly those of per-target [`Self::send`]
    /// calls in ascending target order, but the whole block costs one
    /// queue entry (see [`EventQueue::schedule_broadcast`]).
    pub fn broadcast<M: Clone, Q: EventQueue<M>>(
        &self,
        sim: &mut Q,
        from: usize,
        nprocs: usize,
        msg: M,
        bytes: u64,
    ) {
        sim.schedule_broadcast(self.transfer_time(bytes), from, nprocs, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EventPayload, Sim};

    #[test]
    fn transfer_time_includes_bandwidth() {
        let net = NetworkModel { latency: 10, bytes_per_tick: 100 };
        assert_eq!(net.transfer_time(0), 10);
        assert_eq!(net.transfer_time(1000), 20);
    }

    #[test]
    fn partial_ticks_cost_a_tick() {
        let net = NetworkModel { latency: 10, bytes_per_tick: 100 };
        assert_eq!(net.transfer_time(1), 11);
        assert_eq!(net.transfer_time(99), 11);
        assert_eq!(net.transfer_time(101), 12);
        // The 16-byte status broadcasts of the SP-like model are no
        // longer latency-only.
        let sp = NetworkModel::sp_like();
        assert_eq!(sp.transfer_time(16), sp.latency + 1);
    }

    #[test]
    fn instantaneous_ignores_size() {
        let net = NetworkModel::instantaneous();
        assert_eq!(net.transfer_time(u64::MAX / 2), 0);
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let net = NetworkModel::instantaneous();
        let mut sim: Sim<u8> = Sim::new();
        net.broadcast(&mut sim, 1, 4, 42, 8);
        let mut tos = Vec::new();
        for e in sim {
            if let EventPayload::Message { from, to, msg } = e.payload {
                assert_eq!(from, 1);
                assert_eq!(msg, 42);
                tos.push(to);
            }
        }
        tos.sort_unstable();
        assert_eq!(tos, vec![0, 2, 3]);
    }

    #[test]
    fn send_arrival_time_is_now_plus_transfer() {
        let net = NetworkModel { latency: 5, bytes_per_tick: u64::MAX };
        let mut sim: Sim<u8> = Sim::new();
        sim.schedule(7, EventPayload::Timer { proc: 0, key: 0 });
        sim.next();
        net.send(&mut sim, 0, 1, 9, 100);
        let e = sim.next().unwrap();
        assert_eq!(e.at, 12);
    }
}
