//! Deterministic discrete-event simulation of a distributed-memory machine.
//!
//! The paper's experiments ran on 32 processors of an IBM SP with MPI.
//! What its scheduling strategies actually react to is not the hardware
//! but the *asynchrony*: memory-state messages arrive late, slave tasks
//! land while a subtree is mid-peak, masters make decisions on stale
//! views (Figure 5). This crate reproduces exactly that, deterministically:
//!
//! * [`engine`] — a virtual clock and event queue with FIFO tie-breaking,
//!   so every run is exactly reproducible;
//! * [`network`] — a latency + bandwidth message model;
//! * [`fault`] — seeded deterministic perturbations (jitter, delay,
//!   status-message loss, stragglers) for robustness experiments;
//! * [`memory`] — per-processor memory accounts (factors area + CB stack +
//!   active fronts) with running peaks and optional time-series traces,
//!   the measurement instrument behind every table of the reproduction;
//! * [`recorder`] — an opt-in structured flight recorder of scheduling
//!   events (decisions, memory movements, status traffic);
//! * [`metrics`] — an always-on registry of run-wide counters and
//!   histograms;
//! * [`timeseries`] — columnar ring buffers for the sampling timer's
//!   periodic telemetry snapshots, with CSV/JSONL/Prometheus export;
//! * [`audit`] — replays a recording and verifies the protocol's
//!   conservation and ordering invariants as typed findings;
//! * [`perfetto`] / [`attribution`] — exporters that turn a recording
//!   into a Chrome/Perfetto trace and a peak-attribution report.
//!
//! The multifrontal-specific state machines live in `mf-core`; this crate
//! is solver-agnostic and independently testable.

#![warn(missing_docs)]
pub mod attribution;
pub mod audit;
pub mod engine;
pub mod fault;
pub mod memory;
pub mod metrics;
pub mod network;
pub mod perfetto;
pub mod recorder;
pub mod timeseries;
pub mod trace;

pub use attribution::{active_before, attribute_peaks, LiveItem, PeakAttribution};
pub use audit::{audit_recording, Finding};
pub use engine::{Event, EventPayload, EventQueue, Sim, SingleHeapSim, Time};
pub use fault::{FaultInjector, FaultModel, MsgClass};
pub use memory::ProcMemory;
pub use metrics::{CoreMetrics, Histogram, ProcMetrics, RecoveryCounters, RunMetrics};
pub use network::NetworkModel;
pub use perfetto::{write_chrome_trace, write_chrome_trace_with_series};
pub use recorder::{
    CompactEvent, EventRef, EventView, FrontClass, MemArea, ProcList, Recording, SchedEvent,
    SlavePick, SlavePicks, StatusKind, TaskRole,
};
pub use timeseries::{ProcSeries, RunTimeseries, SampleRow, DEFAULT_SERIES_CAPACITY};
pub use trace::{Trace, TraceSample};
