//! Per-processor memory accounting with running peaks and traces.

use crate::engine::Time;
use crate::trace::Trace;

/// Memory account of one simulated processor, in entries (f64 words).
///
/// Mirrors the three-area layout of the multifrontal method: a factors
/// area that only grows, a stack of contribution blocks, and the
/// currently active frontal matrices. The *stack memory* the paper's
/// tables report is `stack + fronts` (the active memory); its running
/// maximum is [`ProcMemory::active_peak`].
#[derive(Debug, Clone, Default)]
pub struct ProcMemory {
    factors: u64,
    stack: u64,
    fronts: u64,
    active_peak: u64,
    total_peak: u64,
    underflows: u64,
    trace: Option<Trace>,
}

impl ProcMemory {
    /// Fresh account; pass `record_trace = true` to keep the time series
    /// of active memory (used to draw Figure 4/6/8-style evolutions).
    pub fn new(record_trace: bool) -> Self {
        ProcMemory { trace: record_trace.then(Trace::new), ..Default::default() }
    }

    fn bump(&mut self, at: Time) {
        let active = self.stack + self.fronts;
        if active > self.active_peak {
            self.active_peak = active;
        }
        let total = active + self.factors;
        if total > self.total_peak {
            self.total_peak = total;
        }
        if let Some(t) = &mut self.trace {
            t.push(at, active);
        }
    }

    /// Allocates a frontal matrix.
    pub fn alloc_front(&mut self, at: Time, entries: u64) {
        self.fronts += entries;
        self.bump(at);
    }

    /// Releases a frontal matrix. Returns `false` on underflow (an
    /// accounting bug): the account saturates at zero instead of
    /// wrapping, the event is counted in [`Self::underflows`], and the
    /// caller's watchdog reports it — in release builds too.
    #[must_use = "an underflow is an accounting bug the caller must surface"]
    pub fn free_front(&mut self, at: Time, entries: u64) -> bool {
        let ok = self.fronts >= entries;
        if !ok {
            self.underflows += 1;
        }
        self.fronts = self.fronts.saturating_sub(entries);
        self.bump(at);
        ok
    }

    /// Pushes a contribution block.
    pub fn push_cb(&mut self, at: Time, entries: u64) {
        self.stack += entries;
        self.bump(at);
    }

    /// Pops a contribution block. Returns `false` on underflow, with the
    /// same saturate-and-count semantics as [`Self::free_front`].
    #[must_use = "an underflow is an accounting bug the caller must surface"]
    pub fn pop_cb(&mut self, at: Time, entries: u64) -> bool {
        let ok = self.stack >= entries;
        if !ok {
            self.underflows += 1;
        }
        self.stack = self.stack.saturating_sub(entries);
        self.bump(at);
        ok
    }

    /// Appends factor entries.
    pub fn store_factors(&mut self, at: Time, entries: u64) {
        self.factors += entries;
        self.bump(at);
    }

    /// Removes factor entries again (crash recovery: a node whose factors
    /// must be recomputed elsewhere forgets its stale share, so the final
    /// per-node factor accounting stays exactly-once). Returns `false` on
    /// underflow with the same saturate-and-count semantics as
    /// [`Self::free_front`]; peaks keep their history.
    #[must_use = "an underflow is an accounting bug the caller must surface"]
    pub fn forget_factors(&mut self, at: Time, entries: u64) -> bool {
        let ok = self.factors >= entries;
        if !ok {
            self.underflows += 1;
        }
        self.factors = self.factors.saturating_sub(entries);
        self.bump(at);
        ok
    }

    /// Current active memory (stack + fronts).
    pub fn active(&self) -> u64 {
        self.stack + self.fronts
    }

    /// Current stack-only usage.
    pub fn stack(&self) -> u64 {
        self.stack
    }

    /// Current factors usage.
    pub fn factors(&self) -> u64 {
        self.factors
    }

    /// Running peak of the active memory.
    pub fn active_peak(&self) -> u64 {
        self.active_peak
    }

    /// Running peak of active + factors.
    pub fn total_peak(&self) -> u64 {
        self.total_peak
    }

    /// Number of underflowing releases seen (always-on checked
    /// accounting; zero in a correct run).
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Recorded time series, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_peak_counts_stack_plus_fronts() {
        let mut m = ProcMemory::new(false);
        m.push_cb(0, 100);
        m.alloc_front(1, 50);
        assert!(m.pop_cb(2, 100));
        assert!(m.free_front(3, 50));
        assert_eq!(m.active(), 0);
        assert_eq!(m.active_peak(), 150);
        assert_eq!(m.underflows(), 0);
    }

    #[test]
    fn factors_do_not_count_in_active() {
        let mut m = ProcMemory::new(false);
        m.store_factors(0, 1000);
        m.push_cb(1, 10);
        assert_eq!(m.active_peak(), 10);
        assert_eq!(m.total_peak(), 1010);
    }

    #[test]
    fn forget_factors_reverses_store_but_keeps_peaks() {
        let mut m = ProcMemory::new(false);
        m.store_factors(0, 500);
        assert!(m.forget_factors(1, 200));
        assert_eq!(m.factors(), 300);
        assert_eq!(m.total_peak(), 500, "peaks keep their history");
        assert!(!m.forget_factors(2, 400), "over-forgetting underflows");
        assert_eq!(m.factors(), 0);
        assert_eq!(m.underflows(), 1);
    }

    #[test]
    fn trace_records_every_change() {
        let mut m = ProcMemory::new(true);
        m.alloc_front(5, 7);
        assert!(m.free_front(9, 7));
        let t = m.trace().unwrap();
        assert_eq!(t.samples(), &[(5, 7).into(), (9, 0).into()]);
    }

    #[test]
    fn underflow_saturates_and_is_counted() {
        // Always-on checked accounting: release builds must not wrap.
        let mut m = ProcMemory::new(false);
        m.push_cb(0, 5);
        assert!(!m.pop_cb(1, 8));
        assert_eq!(m.stack(), 0);
        assert!(!m.free_front(2, 1));
        assert_eq!(m.active(), 0);
        assert_eq!(m.underflows(), 2);
        // Peaks are unaffected by the saturated releases.
        assert_eq!(m.active_peak(), 5);
    }
}
