//! Chrome trace-event export (loads in Perfetto / `chrome://tracing`).
//!
//! Renders a [`Recording`](crate::recorder::Recording) as the JSON
//! trace-event format: one *process* per simulated processor, compute
//! spans as balanced `B`/`E` duration slices on its thread track, and
//! the active-memory evolution as a `C` counter track split into the
//! paper's two areas (front area vs CB stack). Timestamps are simulator
//! ticks exported as microseconds, so a run of a few million ticks reads
//! as a few seconds of wall time in the viewer.
//!
//! The output is plain ASCII JSON, emitted deterministically in event
//! order — byte-identical for byte-identical recordings.

use crate::recorder::{EventRef, MemArea, Recording};
use crate::timeseries::RunTimeseries;
use std::io::{self, Write};

/// Writes `rec` as Chrome trace-event JSON for an `nprocs`-processor
/// run.
///
/// Counter tracks replay the recording's memory events, so they agree
/// exactly with the solver's accounting (including transient
/// same-instant peaks that a sampled trace would collapse). To overlay
/// the telemetry sampler's coarser view, use
/// [`write_chrome_trace_with_series`].
pub fn write_chrome_trace<W: Write>(w: &mut W, nprocs: usize, rec: &Recording) -> io::Result<()> {
    write_chrome_trace_with_series(w, nprocs, rec, None)
}

/// Like [`write_chrome_trace`], but when a sampled [`RunTimeseries`] is
/// supplied it additionally renders per-processor `C` counter tracks
/// from the telemetry sampler: `sampled memory` (active/stack entries)
/// and `scheduler load` (pool depth and queued slave tasks). The
/// event-replayed counters stay exact; the sampled tracks show what an
/// external monitor polling at the sampling interval would see, so the
/// two can be compared directly in the viewer.
pub fn write_chrome_trace_with_series<W: Write>(
    w: &mut W,
    nprocs: usize,
    rec: &Recording,
    series: Option<&RunTimeseries>,
) -> io::Result<()> {
    writeln!(w, "{{")?;
    writeln!(w, "  \"displayTimeUnit\": \"ms\",")?;
    writeln!(w, "  \"traceEvents\": [")?;

    let mut first = true;
    let mut emit = |w: &mut W, line: &str| -> io::Result<()> {
        if first {
            first = false;
        } else {
            writeln!(w, ",")?;
        }
        write!(w, "    {line}")
    };

    // Track naming metadata: one "process" per simulated processor.
    for p in 0..nprocs {
        emit(
            w,
            &format!(
                "{{ \"ph\": \"M\", \"pid\": {p}, \"name\": \"process_name\", \
                 \"args\": {{ \"name\": \"proc {p}\" }} }}"
            ),
        )?;
        emit(
            w,
            &format!(
                "{{ \"ph\": \"M\", \"pid\": {p}, \"tid\": 0, \"name\": \"thread_name\", \
                 \"args\": {{ \"name\": \"compute\" }} }}"
            ),
        )?;
    }

    // Replayed per-processor memory levels for the counter tracks.
    let mut front = vec![0u64; nprocs];
    let mut stack = vec![0u64; nprocs];

    for te in rec.events() {
        let ts = te.at;
        match te.ev {
            EventRef::ComputeStart { proc, node, role } => {
                emit(
                    w,
                    &format!(
                        "{{ \"ph\": \"B\", \"pid\": {proc}, \"tid\": 0, \"ts\": {ts}, \
                         \"name\": \"{} n{node}\", \"cat\": \"compute\" }}",
                        role.name()
                    ),
                )?;
            }
            EventRef::ComputeEnd { proc, node, role } => {
                emit(
                    w,
                    &format!(
                        "{{ \"ph\": \"E\", \"pid\": {proc}, \"tid\": 0, \"ts\": {ts}, \
                         \"name\": \"{} n{node}\", \"cat\": \"compute\" }}",
                        role.name()
                    ),
                )?;
            }
            EventRef::MemAlloc { proc, area, entries, .. } => {
                match area {
                    MemArea::Front => front[proc] += entries,
                    MemArea::Stack => stack[proc] += entries,
                }
                emit(w, &counter_line(proc, ts, front[proc], stack[proc]))?;
            }
            EventRef::MemFree { proc, area, entries, .. } => {
                match area {
                    MemArea::Front => front[proc] = front[proc].saturating_sub(entries),
                    MemArea::Stack => stack[proc] = stack[proc].saturating_sub(entries),
                }
                emit(w, &counter_line(proc, ts, front[proc], stack[proc]))?;
            }
            EventRef::Activate { proc, node, class } => {
                emit(
                    w,
                    &format!(
                        "{{ \"ph\": \"i\", \"pid\": {proc}, \"tid\": 0, \"ts\": {ts}, \
                         \"s\": \"t\", \"name\": \"activate {} n{node}\", \
                         \"cat\": \"decision\" }}",
                        class.name()
                    ),
                )?;
            }
            EventRef::Forced { proc, node, .. } => {
                emit(
                    w,
                    &format!(
                        "{{ \"ph\": \"i\", \"pid\": {proc}, \"tid\": 0, \"ts\": {ts}, \
                         \"s\": \"t\", \"name\": \"forced n{node}\", \"cat\": \"decision\" }}"
                    ),
                )?;
            }
            // Selection, pool, status, and fault events carry vectors and
            // per-decision context: they belong to `explain`, not to the
            // timeline view.
            _ => {}
        }
    }

    // Sampled telemetry overlay: one row per (sample, proc), already in
    // time order within each processor's series.
    if let Some(ts) = series {
        for (proc, row) in ts.merged() {
            emit(
                w,
                &format!(
                    "{{ \"ph\": \"C\", \"pid\": {proc}, \"ts\": {}, \"name\": \"sampled memory\", \
                     \"args\": {{ \"active\": {}, \"stack\": {} }} }}",
                    row.at, row.active, row.stack
                ),
            )?;
            emit(
                w,
                &format!(
                    "{{ \"ph\": \"C\", \"pid\": {proc}, \"ts\": {}, \"name\": \"scheduler load\", \
                     \"args\": {{ \"pool\": {}, \"queued\": {} }} }}",
                    row.at, row.pool_depth, row.queued
                ),
            )?;
        }
    }

    writeln!(w)?;
    writeln!(w, "  ]")?;
    writeln!(w, "}}")?;
    Ok(())
}

fn counter_line(proc: usize, ts: crate::engine::Time, front: u64, stack: u64) -> String {
    format!(
        "{{ \"ph\": \"C\", \"pid\": {proc}, \"ts\": {ts}, \"name\": \"active memory\", \
         \"args\": {{ \"front\": {front}, \"stack\": {stack} }} }}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recording, SchedEvent, TaskRole};

    #[test]
    fn slices_and_counters_render() {
        let mut rec = Recording::new(None);
        rec.record(0, SchedEvent::MemAlloc { proc: 0, node: 1, area: MemArea::Front, entries: 10 });
        rec.record(0, SchedEvent::ComputeStart { proc: 0, node: 1, role: TaskRole::Elim });
        rec.record(5, SchedEvent::ComputeEnd { proc: 0, node: 1, role: TaskRole::Elim });
        rec.record(5, SchedEvent::MemFree { proc: 0, node: 1, area: MemArea::Front, entries: 10 });

        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, 1, &rec).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("\"ph\": \"B\""));
        assert!(s.contains("\"ph\": \"E\""));
        assert!(s.contains("\"front\": 10"));
        assert!(s.contains("\"front\": 0"));
        assert_eq!(s.matches("\"ph\": \"B\"").count(), s.matches("\"ph\": \"E\"").count());
    }

    #[test]
    fn sampled_series_adds_counter_tracks() {
        use crate::timeseries::{RunTimeseries, SampleRow};
        let rec = Recording::new(None);
        let mut ts = RunTimeseries::new(2, 25, 16);
        ts.push(
            1,
            SampleRow {
                at: 25,
                active: 7,
                stack: 3,
                pool_depth: 2,
                queued: 1,
                busy: true,
                stalled: false,
                control_msgs: 4,
                status_msgs: 9,
            },
        );
        let mut buf = Vec::new();
        write_chrome_trace_with_series(&mut buf, 2, &rec, Some(&ts)).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("\"name\": \"sampled memory\""));
        assert!(s.contains("\"active\": 7, \"stack\": 3"));
        assert!(s.contains("\"name\": \"scheduler load\""));
        assert!(s.contains("\"pool\": 2, \"queued\": 1"));

        // Without a series the output is byte-identical to the plain export.
        let mut plain = Vec::new();
        write_chrome_trace(&mut plain, 2, &rec).unwrap();
        let mut none = Vec::new();
        write_chrome_trace_with_series(&mut none, 2, &rec, None).unwrap();
        assert_eq!(plain, none);
    }
}
