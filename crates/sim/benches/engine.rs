//! Lane-sharded engine vs the single-global-heap reference, across the
//! processor counts the scale sweep targets.
//!
//! Both engines implement [`mf_sim::EventQueue`] and deliver bit-identical
//! sequences (see `crates/core/tests/engine_equiv.rs`); this bench prices
//! the difference. The workload is the hold model the factorization
//! simulation actually presents — a queue at roughly constant depth where
//! every delivery schedules a successor — in two mixes:
//!
//! * **p2p-heavy**: every delivery schedules one point-to-point message
//!   to a pseudo-random processor (the compute/completion traffic);
//! * **broadcast-heavy**: every 16th delivery schedules a broadcast from
//!   the delivering processor instead (the status-coherence traffic —
//!   one logical event fanning out to P-1 deliveries on the lane engine,
//!   P-1 heap entries on the reference).
//!
//! Throughput is reported per *delivered* event, so the broadcast mix
//! measures the fan-out cost, not just the schedule cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mf_sim::engine::{EventPayload, EventQueue, Sim, SingleHeapSim};

const DEPTH: usize = 1 << 10;

#[inline]
fn lcg(x: &mut u64) -> u64 {
    *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *x
}

/// Drives `sim` for `events` deliveries at roughly constant depth.
/// `bcast_every = 0` is the p2p-heavy mix; `n` in `1..` schedules a
/// broadcast on every `n`-th delivery instead of a message.
fn drive<Q: EventQueue<u64>>(mut sim: Q, nprocs: usize, events: u64, bcast_every: u64) -> u64 {
    let mut rng = 0x2545f4914f6cdd1du64;
    for k in 0..DEPTH as u64 {
        let (from, to) = (lcg(&mut rng) as usize % nprocs, lcg(&mut rng) as usize % nprocs);
        sim.schedule(lcg(&mut rng) % 1024, EventPayload::Message { from, to, msg: k });
    }
    let mut acc = 0u64;
    let mut delivered = 0u64;
    // A broadcast injects nprocs-1 deliveries at once, so it pre-pays
    // for that many future deliveries (`owed`): the queue depth stays
    // roughly constant and the two mixes are comparable.
    let mut owed = 0u64;
    while delivered < events {
        let e = sim.pop().expect("queue kept live");
        delivered += 1;
        acc = acc.wrapping_add(e.at);
        let from = match e.payload {
            EventPayload::Message { to, .. } => to,
            EventPayload::Timer { proc, .. } => proc,
        };
        if owed > 0 {
            owed -= 1;
        } else if bcast_every > 0 && delivered.is_multiple_of(bcast_every) && nprocs > 1 {
            sim.schedule_broadcast(lcg(&mut rng) % 1024, from, nprocs, delivered);
            owed = nprocs as u64 - 2;
        } else {
            let to = lcg(&mut rng) as usize % nprocs;
            sim.schedule(lcg(&mut rng) % 1024, EventPayload::Message { from, to, msg: delivered });
        }
    }
    acc
}

fn bench_engines(c: &mut Criterion) {
    const EVENTS: u64 = 200_000;
    for (mix, bcast_every) in [("p2p_heavy", 0u64), ("broadcast_heavy", 16)] {
        let mut g = c.benchmark_group(format!("engine/{mix}"));
        g.throughput(Throughput::Elements(EVENTS));
        for nprocs in [32usize, 256, 1024] {
            g.bench_with_input(BenchmarkId::new("lanes", nprocs), &nprocs, |b, &np| {
                b.iter(|| drive(Sim::<u64>::with_procs(np), np, EVENTS, bcast_every))
            });
            g.bench_with_input(BenchmarkId::new("single_heap", nprocs), &nprocs, |b, &np| {
                b.iter(|| drive(SingleHeapSim::<u64>::new(), np, EVENTS, bcast_every))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
