//! Threaded execution backend: the same sans-io [`SchedulerCore`]s the
//! simulator drives, running on real OS threads with channels.
//!
//! One worker thread per processor owns its core and a *physical* memory
//! ledger it maintains from the core's `Alloc`/`Free` effects — an
//! independent re-derivation of the memory accounting that is checked
//! against the core's own `active_peak` at the end of the run. A
//! coordinator thread owns the virtual clock and a conservative
//! timestamp-ordered event queue; it dispatches exactly one command at a
//! time and performs the transport-side effects, so the execution is a
//! sequentially consistent interleaving with the *same* timestamps the
//! discrete-event backend produces. Under the quiet model (no jitter, no
//! fault perturbations) the per-processor peaks, makespan, and message
//! counts are identical to [`mf_core::parsim::run`] — the backend
//! equivalence the `backend_equiv` binary asserts over the paper's full
//! matrix set.
//!
//! Noise models are runtime features of the simulator, not of the
//! protocol; this backend rejects them ([`ExecError::Unsupported`])
//! rather than approximating.

#![warn(missing_docs)]

use mf_core::config::SolverConfig;
use mf_core::error::{RunDiagnostics, SimError};
use mf_core::malleable::{compute_ticks, SpeedupCurve};
use mf_core::mapping::StaticMapping;
use mf_core::parsim::RunResult;
use mf_core::proto::{
    initial_loads, Effect, Input, Migration, Msg, SchedulerCore, Violation, TIMER_SAMPLE,
};
use mf_core::recovery::{
    digest_factors, Membership, MembershipChange, ObligationLedger, RecoverySnapshot,
};
use mf_core::ProcDiag;
use mf_sim::recorder::MemArea;
use mf_sim::recorder::TaskRole;
use mf_sim::{
    CompactEvent, CoreMetrics, FaultInjector, MsgClass, NetworkModel, Recording, RunMetrics,
    RunTimeseries, SampleRow, Time, Trace, DEFAULT_SERIES_CAPACITY,
};
use mf_symbolic::AssemblyTree;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::mpsc;

/// Why a threaded run could not be performed or failed.
#[derive(Debug)]
pub enum ExecError {
    /// The configuration asks for a simulator-only feature (duration
    /// jitter, fault perturbations).
    Unsupported(String),
    /// The run failed the same way a simulated run can fail.
    Sim(SimError),
    /// A worker's physical ledger disagreed with its core's accounting —
    /// the cross-check this backend exists to perform.
    Ledger {
        /// Offending processor.
        proc: usize,
        /// What disagreed.
        detail: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Unsupported(what) => {
                write!(f, "threaded backend does not support {what}")
            }
            ExecError::Sim(e) => write!(f, "{e}"),
            ExecError::Ledger { proc, detail } => {
                write!(f, "physical ledger mismatch on proc {proc}: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A queued delivery, ordered by `(at, seq)` — identical tie-breaking to
/// the discrete-event simulator (FIFO among simultaneous events).
struct QEntry {
    at: Time,
    seq: u64,
    item: Item,
}

enum Item {
    Msg { from: usize, to: usize, msg: Msg },
    Timer { proc: usize, key: u64 },
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Commands the coordinator sends to a worker.
enum Cmd {
    /// Feed one input into the core at virtual time `now`.
    Input { now: Time, input: Input },
    /// Report the cheapest deferred ready task (stall-breaker support).
    CheapestDeferred,
    /// Report a recovery snapshot of the core's current state.
    Snapshot,
    /// Report the final per-processor state and exit.
    Finish,
}

/// A worker's answer (the protocol is strictly one reply per command).
enum Reply {
    Effects { effects: Vec<Effect>, nodes_done: usize, violation: Option<Violation> },
    Deferred(Option<(u64, usize)>),
    Snapshot(Box<RecoverySnapshot>),
    Final(Box<WorkerFinal>),
}

/// Everything a worker knows at the end of the run.
struct WorkerFinal {
    diag: ProcDiag,
    metrics: CoreMetrics,
    active_peak: u64,
    total_peak: u64,
    factors: u64,
    active: u64,
    underflows: u64,
    disk_busy_until: Time,
    nodes_done: usize,
    forced: u64,
    trace: Option<Trace>,
    /// Outstanding entries in the physical ledger (0 in a correct run).
    ledger_active: u64,
    /// Peak of the physical ledger (must equal `active_peak`).
    ledger_peak: u64,
    /// First Free that exceeded its outstanding allocation, if any.
    ledger_fault: Option<String>,
    /// Per-node factor entries this processor holds (digest input).
    factors_by_node: Vec<u64>,
}

/// The per-worker physical memory ledger, re-derived purely from the
/// core's `Alloc`/`Free` effects: outstanding entries per (node, area)
/// plus the running total and peak. In a correct run it reproduces the
/// core's accounting exactly — an end-to-end check that every allocation
/// the protocol reports is matched and sized consistently.
#[derive(Default)]
struct Ledger {
    outstanding: HashMap<(usize, u8), u64>,
    active: u64,
    peak: u64,
    fault: Option<String>,
}

impl Ledger {
    fn area_key(area: MemArea) -> u8 {
        match area {
            MemArea::Front => 0,
            MemArea::Stack => 1,
        }
    }

    fn alloc(&mut self, node: usize, area: MemArea, entries: u64) {
        *self.outstanding.entry((node, Self::area_key(area))).or_insert(0) += entries;
        self.active += entries;
        self.peak = self.peak.max(self.active);
    }

    fn free(&mut self, node: usize, area: MemArea, entries: u64) {
        let slot = self.outstanding.entry((node, Self::area_key(area))).or_insert(0);
        if *slot < entries || self.active < entries {
            if self.fault.is_none() {
                self.fault = Some(format!(
                    "free of {entries} entries for node {node} ({area:?}) exceeds the {} outstanding",
                    *slot
                ));
            }
            return;
        }
        *slot -= entries;
        self.active -= entries;
    }
}

/// One worker thread: owns its scheduler core and physical ledger,
/// executes commands until told to finish.
fn worker(
    p: usize,
    tree: &AssemblyTree,
    map: &StaticMapping,
    cfg: &SolverConfig,
    load0: &[u64],
    rx: mpsc::Receiver<Cmd>,
    tx: mpsc::Sender<(usize, Reply)>,
) {
    let mut core = SchedulerCore::new(p, tree, map, cfg, load0);
    let mut ledger = Ledger::default();
    for cmd in rx {
        match cmd {
            Cmd::Input { now, input } => {
                let mut effects = Vec::new();
                for e in core.handle(now, input) {
                    match &e {
                        Effect::Alloc { node, area, entries } => {
                            ledger.alloc(*node, *area, *entries)
                        }
                        Effect::Free { node, area, entries } => ledger.free(*node, *area, *entries),
                        _ => {}
                    }
                    effects.push(e);
                }
                let reply = Reply::Effects {
                    effects,
                    nodes_done: core.nodes_done(),
                    violation: core.take_violation(),
                };
                if tx.send((p, reply)).is_err() {
                    return;
                }
            }
            Cmd::CheapestDeferred => {
                if tx.send((p, Reply::Deferred(core.cheapest_deferred()))).is_err() {
                    return;
                }
            }
            Cmd::Snapshot => {
                if tx.send((p, Reply::Snapshot(Box::new(core.snapshot())))).is_err() {
                    return;
                }
            }
            Cmd::Finish => {
                let mem = core.memory();
                let fin = WorkerFinal {
                    diag: core.proc_diag(),
                    metrics: core.metrics().clone(),
                    active_peak: mem.active_peak(),
                    total_peak: mem.total_peak(),
                    factors: mem.factors(),
                    active: mem.active(),
                    underflows: mem.underflows(),
                    disk_busy_until: core.disk_busy_until(),
                    nodes_done: core.nodes_done(),
                    forced: core.forced(),
                    trace: mem.trace().cloned(),
                    ledger_active: ledger.active,
                    ledger_peak: ledger.peak,
                    ledger_fault: ledger.fault.take(),
                    factors_by_node: core.factors_by_node().to_vec(),
                };
                let _ = tx.send((p, Reply::Final(Box::new(fin))));
                return;
            }
        }
    }
}

/// The coordinator: virtual clock, conservative event queue, and the
/// transport-side effect execution (network timing, traffic metrics,
/// flight recorder).
struct Coordinator {
    now: Time,
    seq: u64,
    heap: BinaryHeap<Reverse<QEntry>>,
    delivered: u64,
    messages: u64,
    net: NetworkModel,
    nprocs: usize,
    metrics: RunMetrics,
    rec: Option<Recording>,
    /// Per-processor `(node, role)` by compute key, maintained only while
    /// recording: the coordinator synthesizes `ComputeStart` from the
    /// `StartCompute` effect and `ComputeEnd` from its timer, so the
    /// core's compute path needs no recording branch.
    work_info: Vec<Vec<(usize, TaskRole)>>,
    flops_per_tick: u64,
    /// The speedup curve behind multi-core compute durations — the same
    /// [`compute_ticks`] arithmetic as the simulator backend, so the
    /// virtual-time event streams stay byte-identical.
    curve: SpeedupCurve,
    nodes_done: Vec<usize>,
    /// Message-quiet fault injector (membership faults, stragglers and
    /// the network-kill threshold) — same routing as the simulator's.
    fault: Option<FaultInjector>,
    /// Death declarations from the cores' lease checks, arbitrated after
    /// the event unwinds.
    pending_dead: Vec<usize>,
    /// Scheduled-but-unprocessed events that are not failure-detector
    /// chatter (see the simulator backend for the full rationale).
    live_events: i64,
    /// Messages addressed to dormant (not yet joined) processors.
    buffered: Vec<Vec<(usize, Msg)>>,
    /// Processors fail-stopped so far, in kill order.
    dead: Vec<usize>,
    /// Factor-share obligation record, maintained only on membership runs.
    ledger: ObligationLedger,
    /// Whether to maintain `ledger` (membership orchestration active).
    track_obligations: bool,
    /// All fronts are done; the run only keeps going to drain in-flight
    /// live traffic (so the makespan matches the recovery-off run), and
    /// the failure detector stops re-arming so its chain dies out.
    finishing: bool,
    /// Sampled telemetry series; `None` = sampling disabled (the
    /// zero-cost path: cores never arm the sampling timer).
    ts: Option<RunTimeseries>,
}

impl Coordinator {
    /// True once the fault model's network kill threshold was crossed.
    fn partitioned(&self) -> bool {
        self.fault.as_ref().is_some_and(|f| f.partitioned())
    }

    fn record(&mut self, build: impl FnOnce() -> CompactEvent) {
        if let Some(rec) = self.rec.as_mut() {
            rec.record(self.now, build());
        }
    }

    fn push(&mut self, at: Time, item: Item) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(QEntry { at, seq, item }));
    }

    fn send(&mut self, from: usize, to: usize, msg: Msg, bytes: u64) {
        debug_assert_ne!(from, to, "self-sends are handled inside the core");
        if self.track_obligations {
            // Recorded at send time: a share routed toward a processor
            // that dies in flight is as lost as one that arrived.
            match msg {
                Msg::SlaveTask { node, .. } => self.ledger.slave(node, to),
                Msg::Type3Share { node, .. } => self.ledger.share(node, to),
                _ => {}
            }
        }
        self.messages += 1;
        match msg.class() {
            MsgClass::Control => {
                self.metrics.control_msgs += 1;
                self.metrics.control_bytes += bytes;
            }
            MsgClass::Status => {
                self.metrics.status_msgs += 1;
                self.metrics.status_bytes += bytes;
            }
        }
        let live = !matches!(msg, Msg::Heartbeat);
        let base = self.net.transfer_time(bytes);
        match &mut self.fault {
            None => {
                self.push(self.now + base, Item::Msg { from, to, msg });
                self.live_events += live as i64;
            }
            Some(inj) => match inj.route(base, msg.class()) {
                Some(t) => {
                    self.push(self.now + t, Item::Msg { from, to, msg });
                    self.live_events += live as i64;
                }
                None => {
                    self.metrics.dropped_status += 1;
                    self.record(|| CompactEvent::fault_drop(from, to));
                }
            },
        }
    }

    fn broadcast(&mut self, from: usize, msg: Msg, bytes: u64) {
        if self.rec.is_some() {
            if let Some((kind, value)) = msg.status_kind() {
                self.record(|| CompactEvent::status_send(from, kind, value));
            }
        }
        debug_assert!(matches!(msg.class(), MsgClass::Status), "broadcast is status-only");
        if self.fault.is_none() {
            let n = self.nprocs.saturating_sub(1) as u64;
            self.messages += n;
            self.metrics.status_msgs += n;
            self.metrics.status_bytes += n * bytes;
            self.live_events += n as i64;
            // Targets in ascending order with consecutive sequence numbers:
            // exactly the delivery order of the simulator's broadcast entry.
            let at = self.now + self.net.transfer_time(bytes);
            for to in 0..self.nprocs {
                if to != from {
                    self.push(at, Item::Msg { from, to, msg: msg.clone() });
                }
            }
            return;
        }
        // Under fault every target is routed independently, exactly as in
        // the simulator backend.
        for to in 0..self.nprocs {
            if to != from {
                self.send(from, to, msg.clone(), bytes);
            }
        }
    }

    /// Performs the transport-side effects a worker's reply carried.
    fn apply_effects(&mut self, p: usize, effects: Vec<Effect>) {
        for e in effects {
            match e {
                Effect::Send { to, msg, bytes } => self.send(p, to, msg, bytes),
                Effect::Broadcast { msg, bytes } => self.broadcast(p, msg, bytes),
                Effect::StartCompute { key, node, role, flops, cores } => {
                    if self.rec.is_some() {
                        self.record(|| CompactEvent::compute_start(p, node, role));
                        let info = &mut self.work_info[p];
                        let k = key as usize;
                        if info.len() <= k {
                            info.resize(k + 1, (0, TaskRole::Elim));
                        }
                        info[k] = (node, role);
                    }
                    let exact = compute_ticks(flops, self.flops_per_tick, cores, &self.curve);
                    // Straggler processors compute slower by their speed
                    // factor (the only duration noise this backend
                    // accepts; jitter is rejected up front).
                    let duration = match &self.fault {
                        Some(f) if f.speed_factor(p) > 1.0 => {
                            ((exact as f64 * f.speed_factor(p)).round() as Time).max(1)
                        }
                        _ => exact,
                    };
                    self.metrics.procs[p].busy_ticks += duration;
                    self.live_events += 1;
                    let at = self.now + duration;
                    self.push(at, Item::Timer { proc: p, key });
                }
                Effect::Arm { key, after } => {
                    // A partitioned network starves the detector too:
                    // refusing to re-arm lets the run drain and fail with
                    // a typed `Partitioned` instead of spinning forever.
                    // Same once all fronts are done: the detector chain
                    // dies out and the queue drains.
                    if !self.partitioned() && !self.finishing {
                        let at = self.now + after;
                        self.push(at, Item::Timer { proc: p, key });
                    }
                }
                Effect::DeclareDead { proc } => self.pending_dead.push(proc),
                Effect::Alloc { node, area, entries } => {
                    self.record(|| CompactEvent::mem_alloc(p, node, area, entries));
                }
                Effect::Free { node, area, entries } => {
                    self.record(|| CompactEvent::mem_free(p, node, area, entries));
                }
                Effect::Record(ev) => {
                    if let Some(rec) = self.rec.as_mut() {
                        rec.record(self.now, ev);
                    }
                }
                Effect::Sample { active, stack, pool_depth, queued, busy, stalled } => {
                    // Stamped with the virtual time and the coordinator's
                    // cumulative traffic counters — accounted identically
                    // by both backends, so the series are bit-identical
                    // across them.
                    let at = self.now;
                    let (control_msgs, status_msgs) =
                        (self.metrics.control_msgs, self.metrics.status_msgs);
                    if let Some(ts) = self.ts.as_mut() {
                        ts.push(
                            p,
                            SampleRow {
                                at,
                                active,
                                stack,
                                pool_depth,
                                queued,
                                busy,
                                stalled,
                                control_msgs,
                                status_msgs,
                            },
                        );
                    }
                }
            }
        }
    }
}

/// Sends one input to worker `p` and applies the transport effects of its
/// reply. Returns the violation the core flagged, if any.
fn dispatch(
    co: &mut Coordinator,
    cmds: &[mpsc::Sender<Cmd>],
    replies: &mpsc::Receiver<(usize, Reply)>,
    p: usize,
    input: Input,
) -> Result<Option<Violation>, ExecError> {
    let now = co.now;
    cmds[p].send(Cmd::Input { now, input }).map_err(|_| worker_died(p))?;
    match replies.recv() {
        Ok((q, Reply::Effects { effects, nodes_done, violation })) => {
            debug_assert_eq!(q, p);
            co.nodes_done[p] = nodes_done;
            co.apply_effects(p, effects);
            Ok(violation)
        }
        _ => Err(worker_died(p)),
    }
}

fn worker_died(p: usize) -> ExecError {
    ExecError::Ledger { proc: p, detail: "worker thread terminated unexpectedly".into() }
}

/// Collects every worker's final state (ends the worker threads).
fn collect_finals(
    cmds: &[mpsc::Sender<Cmd>],
    replies: &mpsc::Receiver<(usize, Reply)>,
    nprocs: usize,
) -> Result<Vec<WorkerFinal>, ExecError> {
    for tx in cmds {
        let _ = tx.send(Cmd::Finish);
    }
    let mut finals: Vec<Option<WorkerFinal>> = (0..nprocs).map(|_| None).collect();
    for _ in 0..nprocs {
        match replies.recv() {
            Ok((p, Reply::Final(f))) => finals[p] = Some(*f),
            Ok((p, _)) => return Err(worker_died(p)),
            Err(_) => return Err(worker_died(0)),
        }
    }
    Ok(finals.into_iter().map(|f| f.expect("every worker reported")).collect())
}

fn diagnostics(co: &Coordinator, finals: &[WorkerFinal], total_nodes: usize) -> RunDiagnostics {
    let mut metrics = co.metrics.clone();
    for (p, f) in finals.iter().enumerate() {
        metrics.merge_core(p, &f.metrics);
    }
    RunDiagnostics {
        now: co.now,
        delivered_events: co.delivered,
        in_flight: co.heap.len(),
        nodes_done: finals.iter().map(|f| f.nodes_done).sum(),
        total_nodes,
        dropped_messages: co.fault.as_ref().map_or(0, |f| f.dropped()),
        dead: co.dead.clone(),
        metrics: Box::new(metrics),
        procs: finals.iter().map(|f| f.diag.clone()).collect(),
    }
}

/// No-progress error for the current state: a crossed network-kill
/// threshold is a `Partitioned`, anything else a generic `Stalled`.
fn stall_error(co: &Coordinator, cfg: &SolverConfig, diag: RunDiagnostics) -> SimError {
    let diag = Box::new(diag);
    if co.partitioned() {
        let after = cfg.fault.as_ref().and_then(|f| f.kill_network_after).unwrap_or(0);
        SimError::Partitioned { after, diag }
    } else {
        SimError::Stalled { diag }
    }
}

/// Asks worker `p` for a recovery snapshot of its core.
fn snapshot_of(
    cmds: &[mpsc::Sender<Cmd>],
    replies: &mpsc::Receiver<(usize, Reply)>,
    p: usize,
) -> Result<RecoverySnapshot, ExecError> {
    cmds[p].send(Cmd::Snapshot).map_err(|_| worker_died(p))?;
    match replies.recv() {
        Ok((q, Reply::Snapshot(s))) => {
            debug_assert_eq!(q, p);
            Ok(*s)
        }
        _ => Err(worker_died(p)),
    }
}

/// Fail-stops processor `d`: snapshots the dying core (its worker thread
/// stays parked, it is simply never dispatched to again) and marks it
/// dead. Detection and recovery happen later, through the lease protocol.
fn kill_proc(
    co: &mut Coordinator,
    cmds: &[mpsc::Sender<Cmd>],
    replies: &mpsc::Receiver<(usize, Reply)>,
    ms: &mut Membership,
    d: usize,
) -> Result<(), ExecError> {
    if !ms.alive[d] {
        return Ok(());
    }
    let snap = if ms.joined[d] {
        snapshot_of(cmds, replies, d)?
    } else {
        RecoverySnapshot { proc: d, ..Default::default() }
    };
    ms.note_kill(d, snap);
    co.dead.push(d);
    co.metrics.recovery.kills_observed += 1;
    Ok(())
}

/// Arbitrates the death declarations the cores' lease checks emitted —
/// the threaded mirror of the simulator backend's recovery sequence, in
/// the same order so the two backends stay bit-identical.
#[allow(clippy::too_many_arguments)]
fn process_deaths(
    co: &mut Coordinator,
    cmds: &[mpsc::Sender<Cmd>],
    replies: &mpsc::Receiver<(usize, Reply)>,
    ms: &mut Membership,
    tree: &AssemblyTree,
    cfg: &SolverConfig,
    n: usize,
) -> Result<(), ExecError> {
    while !co.pending_dead.is_empty() {
        let pend = std::mem::take(&mut co.pending_dead);
        for d in pend {
            if ms.recovered_deaths[d] {
                continue;
            }
            kill_proc(co, cmds, replies, ms, d)?;
            if !ms.adopters_exist(d) {
                let finals = collect_finals(cmds, replies, cfg.nprocs)?;
                let diag = diagnostics(co, &finals, n);
                return Err(ExecError::Sim(stall_error(co, cfg, diag)));
            }
            let mut snaps = Vec::with_capacity(cfg.nprocs);
            for p in 0..cfg.nprocs {
                snaps.push(if ms.alive[p] {
                    snapshot_of(cmds, replies, p)?
                } else {
                    ms.dead_snaps[p]
                        .clone()
                        .unwrap_or(RecoverySnapshot { proc: p, ..Default::default() })
                });
            }
            let plan = ms.plan_loss(tree, cfg.capacity, d, &snaps, &mut co.ledger);
            co.metrics.recovery.subtrees_reassigned += plan.roots.len() as u64;
            co.metrics.recovery.nodes_recomputed += plan.recompute.len() as u64;
            co.metrics.recovery.orphaned_cb_entries += plan.dead_stack_entries;
            co.record(|| CompactEvent::proc_lost(d, plan.recompute.len()));
            for &(root, adopter) in &plan.roots {
                co.record(|| CompactEvent::subtree_reassigned(root, d, adopter));
            }
            for p in 0..cfg.nprocs {
                if ms.alive[p] && ms.joined[p] {
                    let input = Input::Recover { plan: Box::new(plan.clone()) };
                    if let Some(v) = dispatch(co, cmds, replies, p, input)? {
                        let finals = collect_finals(cmds, replies, cfg.nprocs)?;
                        return Err(ExecError::Sim(violation_error(
                            v,
                            diagnostics(co, &finals, n),
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Brings processor `q` into the machine — the threaded mirror of the
/// simulator backend's join sequence (announce, log replay, buffered
/// delivery, then memory-aware rebalancing from the fullest pool).
#[allow(clippy::too_many_arguments)]
fn join_proc(
    co: &mut Coordinator,
    cmds: &[mpsc::Sender<Cmd>],
    replies: &mpsc::Receiver<(usize, Reply)>,
    ms: &mut Membership,
    tree: &AssemblyTree,
    map: &StaticMapping,
    cfg: &SolverConfig,
    n: usize,
    q: usize,
) -> Result<(), ExecError> {
    if !ms.alive[q] || ms.joined[q] {
        return Ok(());
    }
    ms.note_join(q);
    co.metrics.recovery.joins_observed += 1;
    let fail = |co: &mut Coordinator, cmds, replies, v| -> Result<(), ExecError> {
        let finals = collect_finals(cmds, replies, cfg.nprocs)?;
        Err(ExecError::Sim(violation_error(v, diagnostics(co, &finals, n))))
    };
    for p in 0..cfg.nprocs {
        if ms.alive[p] && ms.joined[p] {
            if let Some(v) = dispatch(co, cmds, replies, p, Input::Join { proc: q })? {
                return fail(co, cmds, replies, v);
            }
        }
    }
    for ch in ms.log.clone() {
        let input = match ch {
            MembershipChange::Recover(plan) => Input::Recover { plan: Box::new(plan) },
            MembershipChange::Migrate(m) => Input::Migrate { m: Box::new(m) },
        };
        if let Some(v) = dispatch(co, cmds, replies, q, input)? {
            return fail(co, cmds, replies, v);
        }
    }
    if let Some(v) = dispatch(co, cmds, replies, q, Input::Tick)? {
        return fail(co, cmds, replies, v);
    }
    for (from, msg) in std::mem::take(&mut co.buffered[q]) {
        if ms.alive[from] {
            if let Some(v) = dispatch(co, cmds, replies, q, Input::Deliver { from, msg })? {
                return fail(co, cmds, replies, v);
            }
        }
    }
    // Memory-aware rebalancing: the fullest surviving pool donates up to
    // two of its largest ready upper tasks to the idle joiner.
    let mut donor: Option<(usize, usize)> = None; // (len, proc)
    for p in 0..cfg.nprocs {
        if p != q && ms.alive[p] && ms.joined[p] {
            let len = snapshot_of(cmds, replies, p)?.pool.len();
            if len > 0 {
                let cand = (len, p);
                let better =
                    donor.is_none_or(|(bl, bp)| (Reverse(cand.0), cand.1) < (Reverse(bl), bp));
                if better {
                    donor = Some(cand);
                }
            }
        }
    }
    let mut migrated = 0usize;
    if let Some((_, d)) = donor {
        let snap = snapshot_of(cmds, replies, d)?;
        let mut cands: Vec<usize> = snap
            .pool
            .iter()
            .copied()
            .filter(|&v| map.subtree_of[v].is_none() || ms.recovered[v])
            .collect();
        cands.sort_by_key(|&v| (Reverse(tree.flops(v)), v));
        for node in cands.into_iter().take(2) {
            let pieces: Vec<(usize, u64, usize)> = snap
                .registered
                .iter()
                .filter(|&&(parent, ..)| parent == node)
                .map(|&(_, h, e, c)| (h, e, c))
                .collect();
            let mg = Migration { node, from: d, to: q, flops: tree.flops(node), pieces };
            ms.note_migration(&mg);
            co.metrics.recovery.rebalance_migrations += 1;
            for p in 0..cfg.nprocs {
                if ms.alive[p] && ms.joined[p] {
                    let input = Input::Migrate { m: Box::new(mg.clone()) };
                    if let Some(v) = dispatch(co, cmds, replies, p, input)? {
                        return fail(co, cmds, replies, v);
                    }
                }
            }
            migrated += 1;
        }
    }
    co.record(|| CompactEvent::proc_joined(q, migrated));
    Ok(())
}

/// Runs the parallel factorization on real OS threads: one worker per
/// processor plus a coordinating event loop on the calling thread.
///
/// Produces the same [`RunResult`] as [`mf_core::parsim::run`] — under
/// the quiet model, with identical per-processor peaks, makespan, and
/// message counts. Returns [`ExecError::Unsupported`] when the
/// configuration asks for simulator-only noise models, and
/// [`ExecError::Ledger`] when a worker's physically re-derived memory
/// ledger disagrees with its core's accounting.
pub fn run_threads(
    tree: &AssemblyTree,
    map: &StaticMapping,
    cfg: &SolverConfig,
) -> Result<RunResult, ExecError> {
    if cfg.jitter.is_some() {
        return Err(ExecError::Unsupported("duration jitter (simulator-only noise)".into()));
    }
    // Membership faults (kills, joins, a network kill, stragglers) are
    // deterministic and fully supported; only per-message noise (jitter,
    // delays, drops) remains simulator-only.
    if cfg.fault.as_ref().is_some_and(|m| !m.is_message_quiet()) {
        return Err(ExecError::Unsupported("fault perturbations (simulator-only noise)".into()));
    }
    let n = tree.len();
    let load0 = initial_loads(tree, map, cfg.nprocs);

    std::thread::scope(|scope| {
        let (reply_tx, replies) = mpsc::channel::<(usize, Reply)>();
        let mut cmds = Vec::with_capacity(cfg.nprocs);
        for p in 0..cfg.nprocs {
            let (tx, rx) = mpsc::channel::<Cmd>();
            cmds.push(tx);
            let reply_tx = reply_tx.clone();
            let load0 = &load0;
            scope.spawn(move || worker(p, tree, map, cfg, load0, rx, reply_tx));
        }
        drop(reply_tx);

        let mut co = Coordinator {
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            delivered: 0,
            messages: 0,
            net: cfg.network,
            nprocs: cfg.nprocs,
            metrics: RunMetrics::new(cfg.nprocs),
            rec: cfg.record_events.then(|| Recording::new(cfg.event_capacity)),
            work_info: if cfg.record_events { vec![Vec::new(); cfg.nprocs] } else { Vec::new() },
            flops_per_tick: cfg.flops_per_tick,
            curve: cfg.core_alloc.curve(),
            nodes_done: vec![0; cfg.nprocs],
            // Quiet models perturb nothing: keep the exact fast paths so
            // such runs stay bit-identical (same filter as the simulator).
            fault: cfg.fault.clone().filter(|m| !m.is_quiet()).map(FaultInjector::new),
            pending_dead: Vec::new(),
            live_events: 0,
            buffered: vec![Vec::new(); cfg.nprocs],
            dead: Vec::new(),
            ledger: ObligationLedger::default(),
            track_obligations: false,
            finishing: false,
            ts: cfg
                .sample_every
                .map(|every| RunTimeseries::new(cfg.nprocs, every, DEFAULT_SERIES_CAPACITY)),
        };
        // Membership orchestration only on runs that need it — the quiet
        // path takes none of the branches below.
        let mut membership = Membership::needed(cfg.recovery.is_some(), cfg.fault.as_ref())
            .then(|| Membership::new(cfg.nprocs, map.owner.clone(), cfg.fault.as_ref()));
        co.track_obligations = membership.is_some();

        // Reports a forced-activation candidate over the reachable
        // processors, mirroring the simulator's `force_one_deferred`.
        fn cheapest_deferred(
            cmds: &[mpsc::Sender<Cmd>],
            replies: &mpsc::Receiver<(usize, Reply)>,
            ms: Option<&Membership>,
            capacity: Option<u64>,
        ) -> Result<Option<(usize, usize)>, ExecError> {
            if capacity.is_none() {
                return Ok(None);
            }
            let mut best: Option<(u64, usize, usize)> = None;
            for (p, tx) in cmds.iter().enumerate() {
                if ms.is_some_and(|m| !m.alive[p] || !m.joined[p]) {
                    continue; // forcing work onto a dead processor helps nobody
                }
                tx.send(Cmd::CheapestDeferred).map_err(|_| worker_died(p))?;
                match replies.recv() {
                    Ok((q, Reply::Deferred(d))) => {
                        debug_assert_eq!(q, p);
                        if let Some((cost, v)) = d {
                            let cand = (cost, p, v);
                            if best.is_none_or(|b| cand < b) {
                                best = Some(cand);
                            }
                        }
                    }
                    _ => return Err(worker_died(p)),
                }
            }
            Ok(best.map(|(_, p, v)| (p, v)))
        }

        for p in 0..cfg.nprocs {
            if membership.as_ref().is_some_and(|m| !m.joined[p]) {
                continue; // dormant until its scheduled join
            }
            if let Some(v) = dispatch(&mut co, &cmds, &replies, p, Input::Tick)? {
                let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
                return Err(ExecError::Sim(violation_error(v, diagnostics(&co, &finals, n))));
            }
        }
        'run: loop {
            while let Some(Reverse(QEntry { at, item, .. })) = co.heap.pop() {
                debug_assert!(at >= co.now, "event queue must be causal");
                co.now = at;
                co.delivered += 1;
                if let Some(ms) = membership.as_mut() {
                    // The fault schedule is keyed on delivered-event
                    // indices: scheduled kills and joins fire before the
                    // event they precede is processed.
                    ms.delivered += 1;
                    let idx = ms.delivered;
                    while let Some(d) = ms.take_due_kill(idx) {
                        kill_proc(&mut co, &cmds, &replies, ms, d)?;
                    }
                    while let Some(jq) = ms.take_due_join(idx) {
                        join_proc(&mut co, &cmds, &replies, ms, tree, map, cfg, n, jq)?;
                    }
                }
                // Quiescence accounting: everything except failure-detector
                // chatter counts as a live event.
                match &item {
                    Item::Msg { msg, .. } if !matches!(msg, Msg::Heartbeat) => {
                        co.live_events -= 1;
                    }
                    Item::Timer { key, .. } if *key < TIMER_SAMPLE => co.live_events -= 1,
                    _ => {}
                }
                let (p, input) = match item {
                    Item::Msg { from, to, msg } => {
                        if let Some(ms) = membership.as_ref() {
                            if !ms.alive[from] || !ms.alive[to] {
                                continue; // a dead endpoint: the message is lost
                            }
                            if !ms.joined[to] {
                                co.buffered[to].push((from, msg));
                                continue; // parked until the join
                            }
                        }
                        (to, Input::Deliver { from, msg })
                    }
                    Item::Timer { proc, key } => {
                        if let Some(ms) = membership.as_ref() {
                            if !ms.alive[proc] || !ms.joined[proc] {
                                continue; // a dead processor's timers are void
                            }
                        }
                        if co.rec.is_some() {
                            // A fired timer is a compute completion: record
                            // ComputeEnd before the worker's effects (exactly
                            // where the completion handler sits in the event
                            // order).
                            if let Some(&(node, role)) = co.work_info[proc].get(key as usize) {
                                co.record(|| CompactEvent::compute_end(proc, node, role));
                            }
                        }
                        (proc, Input::TimerFired { key })
                    }
                };
                if let Some(v) = dispatch(&mut co, &cmds, &replies, p, input)? {
                    let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
                    return Err(ExecError::Sim(violation_error(v, diagnostics(&co, &finals, n))));
                }
                if let Some(ms) = membership.as_mut() {
                    if !co.pending_dead.is_empty() {
                        process_deaths(&mut co, &cmds, &replies, ms, tree, cfg, n)?;
                    }
                } else {
                    debug_assert!(co.pending_dead.is_empty(), "DeclareDead without recovery");
                }
                if let Some(limit) = cfg.time_limit {
                    if co.now > limit {
                        let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
                        let diag = Box::new(diagnostics(&co, &finals, n));
                        return Err(ExecError::Sim(SimError::TimeLimit { limit, diag }));
                    }
                }
                if let Some(ms) = membership.as_mut() {
                    // Membership-aware termination over the survivors only
                    // (see the simulator backend for the full rationale).
                    let done: usize =
                        (0..cfg.nprocs).filter(|&p| ms.alive[p]).map(|p| co.nodes_done[p]).sum();
                    if done >= n {
                        // Keep draining in-flight live traffic so the
                        // final time matches the recovery-off run exactly;
                        // the detector stops re-arming and dies out.
                        co.finishing = true;
                        if co.live_events == 0 {
                            break 'run;
                        }
                        continue;
                    }
                    if co.live_events == 0 && cfg.recovery.is_some() {
                        // Quiescent apart from detector chatter: progress
                        // can still arrive from the fault schedule or a
                        // lease about to expire; otherwise run the same
                        // degradation ladder as a drained queue.
                        if ms.schedule_pending()
                            || ms.undeclared_dead()
                            || !co.pending_dead.is_empty()
                        {
                            continue;
                        }
                        match cheapest_deferred(&cmds, &replies, Some(&*ms), cfg.capacity)? {
                            Some((p, v)) => {
                                let input = Input::Force { node: v };
                                if let Some(viol) = dispatch(&mut co, &cmds, &replies, p, input)? {
                                    let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
                                    return Err(ExecError::Sim(violation_error(
                                        viol,
                                        diagnostics(&co, &finals, n),
                                    )));
                                }
                            }
                            None => {
                                let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
                                let diag = diagnostics(&co, &finals, n);
                                return Err(ExecError::Sim(stall_error(&co, cfg, diag)));
                            }
                        }
                    }
                } else if cfg.sample_every.is_some() {
                    // Sampler-aware termination (mirrors the simulator
                    // backend): without membership the sampler's
                    // self-re-arming timer chain never lets the queue
                    // drain, so completion is checked per event. Once
                    // every front is done the sampler stops re-arming
                    // (`finishing`) and the run breaks the moment the
                    // last live event is processed — the clock never
                    // advances past the sampler-off makespan.
                    let done: usize = co.nodes_done.iter().sum();
                    if done >= n {
                        co.finishing = true;
                        if co.live_events == 0 {
                            break 'run;
                        }
                    }
                }
            }
            // The queue drained (the recovery-off path — with recovery on
            // it only happens once a partitioned coordinator stops
            // re-arming the detector).
            let done: usize = match membership.as_ref() {
                Some(ms) => {
                    (0..cfg.nprocs).filter(|&p| ms.alive[p]).map(|p| co.nodes_done[p]).sum()
                }
                None => co.nodes_done.iter().sum(),
            };
            if done >= n {
                break;
            }
            // A scheduled join whose event index was never reached fires
            // now: the joiner may hold the only way forward.
            if let Some(ms) = membership.as_mut() {
                if let Some(jq) = ms.take_next_join() {
                    join_proc(&mut co, &cmds, &replies, ms, tree, map, cfg, n, jq)?;
                    continue;
                }
            }
            // Same degradation ladder as the simulator backend: force the
            // globally cheapest deferred task, or report a genuine stall.
            match cheapest_deferred(&cmds, &replies, membership.as_ref(), cfg.capacity)? {
                Some((p, v)) => {
                    let input = Input::Force { node: v };
                    if let Some(viol) = dispatch(&mut co, &cmds, &replies, p, input)? {
                        let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
                        return Err(ExecError::Sim(violation_error(
                            viol,
                            diagnostics(&co, &finals, n),
                        )));
                    }
                }
                None => {
                    let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
                    let diag = diagnostics(&co, &finals, n);
                    return Err(ExecError::Sim(stall_error(&co, cfg, diag)));
                }
            }
        }

        let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
        for (p, f) in finals.iter().enumerate() {
            if let Some(detail) = &f.ledger_fault {
                return Err(ExecError::Ledger { proc: p, detail: detail.clone() });
            }
            if f.ledger_peak != f.active_peak {
                return Err(ExecError::Ledger {
                    proc: p,
                    detail: format!(
                        "ledger peak {} != accounting peak {}",
                        f.ledger_peak, f.active_peak
                    ),
                });
            }
            if f.ledger_active != f.active {
                return Err(ExecError::Ledger {
                    proc: p,
                    detail: format!(
                        "ledger residual {} != accounting residual {}",
                        f.ledger_active, f.active
                    ),
                });
            }
        }

        let disk_end = finals.iter().map(|f| f.disk_busy_until).max().unwrap_or(0);
        let makespan = co.now.max(disk_end);
        let peaks: Vec<u64> = finals.iter().map(|f| f.active_peak).collect();
        let max_peak = peaks.iter().copied().max().unwrap_or(0);
        let avg_peak = peaks.iter().sum::<u64>() as f64 / peaks.len().max(1) as f64;
        let mut metrics = co.metrics;
        for (p, f) in finals.iter().enumerate() {
            metrics.merge_core(p, &f.metrics);
        }
        if let Some(rec) = &co.rec {
            // Finalization invariant: every payload reference of the finished
            // recording is in-bounds and non-overlapping.
            rec.debug_validate();
        }
        let alive = |p: usize| membership.as_ref().is_none_or(|m| m.alive[p]);
        let factor_digest = digest_factors(
            (0..cfg.nprocs).filter(|&p| alive(p)).map(|p| finals[p].factors_by_node.as_slice()),
            n,
        );
        Ok(RunResult {
            total_peaks: finals.iter().map(|f| f.total_peak).collect(),
            factor_entries: finals.iter().map(|f| f.factors).collect(),
            max_peak,
            avg_peak,
            makespan,
            messages: co.messages,
            events_delivered: co.delivered,
            traces: cfg
                .record_traces
                .then(|| finals.iter().map(|f| f.trace.clone().unwrap_or_default()).collect()),
            nodes_done: (0..cfg.nprocs).filter(|&p| alive(p)).map(|p| finals[p].nodes_done).sum(),
            total_nodes: n,
            dropped_messages: co.fault.as_ref().map_or(0, |f| f.dropped()),
            forced_activations: finals.iter().map(|f| f.forced).sum(),
            final_active: finals.iter().map(|f| f.active).collect(),
            underflows: finals.iter().map(|f| f.underflows).collect(),
            metrics,
            recording: co.rec,
            timeseries: co.ts,
            peaks,
            factor_digest,
            dead: co.dead,
        })
    })
}

fn violation_error(v: Violation, diag: RunDiagnostics) -> SimError {
    let diag = Box::new(diag);
    match v {
        Violation::Accounting { proc, area } => SimError::Accounting { proc, area, diag },
        Violation::Protocol { detail } => SimError::Protocol { detail, diag },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_core::config::SolverConfig;
    use mf_core::mapping::compute_mapping;
    use mf_order::OrderingKind;
    use mf_sparse::gen::grid::{grid2d, Stencil};
    use mf_symbolic::seqstack::AssemblyDiscipline;
    use mf_symbolic::AmalgamationOptions;

    fn tree_for(nx: usize) -> AssemblyTree {
        let a = grid2d(nx, nx, Stencil::Star);
        let p = OrderingKind::Metis.compute(&a);
        let mut s = mf_symbolic::analyze(&a, &p, &AmalgamationOptions::default());
        mf_symbolic::seqstack::apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
        s.tree
    }

    #[test]
    fn threads_match_simulator_exactly() {
        let tree = tree_for(24);
        for cfg in [
            SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) },
            SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) },
            SolverConfig {
                type2_front_min: 24,
                capacity: Some(1),
                ..SolverConfig::mumps_baseline(4)
            },
        ] {
            let map = compute_mapping(&tree, &cfg);
            let sim = mf_core::parsim::run(&tree, &map, &cfg).unwrap();
            let thr = run_threads(&tree, &map, &cfg).unwrap();
            assert_eq!(thr.peaks, sim.peaks);
            assert_eq!(thr.total_peaks, sim.total_peaks);
            assert_eq!(thr.makespan, sim.makespan);
            assert_eq!(thr.messages, sim.messages);
            assert_eq!(thr.nodes_done, sim.nodes_done);
            assert_eq!(thr.forced_activations, sim.forced_activations);
            assert_eq!(thr.metrics, sim.metrics);
        }
    }

    #[test]
    fn recording_matches_simulator() {
        let tree = tree_for(20);
        let cfg = SolverConfig {
            type2_front_min: 24,
            record_events: true,
            record_traces: true,
            ..SolverConfig::memory_based(4)
        };
        let map = compute_mapping(&tree, &cfg);
        let sim = mf_core::parsim::run(&tree, &map, &cfg).unwrap();
        let thr = run_threads(&tree, &map, &cfg).unwrap();
        assert_eq!(thr.recording, sim.recording, "recordings must be bit-identical");
        let (st, tt) = (sim.traces.unwrap(), thr.traces.unwrap());
        for (a, b) in st.iter().zip(&tt) {
            assert_eq!(a.max(), b.max());
        }
    }

    #[test]
    fn timeseries_matches_simulator() {
        let tree = tree_for(20);
        let cfg = SolverConfig {
            type2_front_min: 24,
            sample_every: Some(50),
            ..SolverConfig::memory_based(4)
        };
        let map = compute_mapping(&tree, &cfg);
        let sim = mf_core::parsim::run(&tree, &map, &cfg).unwrap();
        let thr = run_threads(&tree, &map, &cfg).unwrap();
        // Sampling rides the shared timer protocol, so the threaded
        // backend stays bit-identical with it on — and both backends
        // sample the same series.
        assert_eq!(thr.peaks, sim.peaks);
        assert_eq!(thr.makespan, sim.makespan);
        assert_eq!(thr.messages, sim.messages);
        let (st, tt) = (sim.timeseries.unwrap(), thr.timeseries.unwrap());
        assert!(st.total_len() > 0);
        assert_eq!(tt, st, "both backends must sample the same series");
    }

    #[test]
    fn noise_models_are_rejected() {
        let tree = tree_for(16);
        let cfg = SolverConfig {
            type2_front_min: 24,
            jitter: Some((7, 0.1)),
            ..SolverConfig::mumps_baseline(2)
        };
        let map = compute_mapping(&tree, &cfg);
        assert!(matches!(run_threads(&tree, &map, &cfg), Err(ExecError::Unsupported(_))));
        let cfg = SolverConfig {
            type2_front_min: 24,
            fault: Some(mf_sim::FaultModel::intensity(13, 3.0)),
            ..SolverConfig::mumps_baseline(2)
        };
        assert!(matches!(run_threads(&tree, &map, &cfg), Err(ExecError::Unsupported(_))));
        // The *quiet* fault model perturbs nothing and is accepted.
        let cfg = SolverConfig {
            type2_front_min: 24,
            fault: Some(mf_sim::FaultModel::quiet(9)),
            ..SolverConfig::mumps_baseline(2)
        };
        let sim = mf_core::parsim::run(&tree, &map, &cfg).unwrap();
        let thr = run_threads(&tree, &map, &cfg).unwrap();
        assert_eq!(thr.peaks, sim.peaks);
    }

    #[test]
    fn membership_faults_match_simulator_exactly() {
        // Kill and join schedules are deterministic membership faults:
        // the threaded backend must reproduce the simulator's recovery
        // bit for bit — same peaks, same makespan, same digest, same
        // recovery counters.
        let tree = tree_for(20);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) };
        let map = compute_mapping(&tree, &cfg0);
        let faults = [
            mf_sim::FaultModel { kill_at: vec![(64, 1)], ..mf_sim::FaultModel::quiet(1) },
            mf_sim::FaultModel { join_at: vec![(64, 3)], ..mf_sim::FaultModel::quiet(1) },
            mf_sim::FaultModel {
                kill_at: vec![(256, 2)],
                join_at: vec![(32, 3)],
                ..mf_sim::FaultModel::quiet(1)
            },
        ];
        for fault in faults {
            let cfg = SolverConfig {
                recovery: Some(mf_core::config::RecoveryConfig::default()),
                fault: Some(fault),
                ..cfg0.clone()
            };
            let sim = mf_core::parsim::run(&tree, &map, &cfg).unwrap();
            let thr = run_threads(&tree, &map, &cfg).unwrap();
            assert_eq!(thr.peaks, sim.peaks);
            assert_eq!(thr.makespan, sim.makespan);
            assert_eq!(thr.messages, sim.messages);
            assert_eq!(thr.factor_digest, sim.factor_digest);
            assert_eq!(thr.dead, sim.dead);
            assert_eq!(thr.nodes_done, sim.nodes_done);
            assert_eq!(thr.metrics.recovery, sim.metrics.recovery);
        }
    }

    #[test]
    fn network_kill_reports_partitioned() {
        // The same typed error as the simulator backend: a crossed
        // network-kill threshold is a Partitioned, not a hang.
        let tree = tree_for(24);
        let cfg0 = SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) };
        let map = compute_mapping(&tree, &cfg0);
        let cfg = SolverConfig {
            fault: Some(mf_sim::FaultModel {
                kill_network_after: Some(10),
                ..mf_sim::FaultModel::quiet(1)
            }),
            ..cfg0
        };
        match run_threads(&tree, &map, &cfg) {
            Err(ExecError::Sim(SimError::Partitioned { after, diag })) => {
                assert_eq!(after, 10);
                assert!(diag.nodes_done < diag.total_nodes);
                assert!(diag.dropped_messages > 0);
                assert!(diag.dead.is_empty(), "a partition kills no processor");
            }
            other => panic!("expected Partitioned, got {other:?}"),
        }
    }

    #[test]
    fn time_limit_still_guards() {
        let tree = tree_for(16);
        let cfg = SolverConfig {
            type2_front_min: 24,
            time_limit: Some(1),
            ..SolverConfig::mumps_baseline(2)
        };
        let map = compute_mapping(&tree, &cfg);
        match run_threads(&tree, &map, &cfg) {
            Err(ExecError::Sim(SimError::TimeLimit { .. })) => {}
            other => panic!("expected TimeLimit, got {other:?}"),
        }
    }
}
