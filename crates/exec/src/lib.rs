//! Threaded execution backend: the same sans-io [`SchedulerCore`]s the
//! simulator drives, running on real OS threads with channels.
//!
//! One worker thread per processor owns its core and a *physical* memory
//! ledger it maintains from the core's `Alloc`/`Free` effects — an
//! independent re-derivation of the memory accounting that is checked
//! against the core's own `active_peak` at the end of the run. A
//! coordinator thread owns the virtual clock and a conservative
//! timestamp-ordered event queue; it dispatches exactly one command at a
//! time and performs the transport-side effects, so the execution is a
//! sequentially consistent interleaving with the *same* timestamps the
//! discrete-event backend produces. Under the quiet model (no jitter, no
//! fault perturbations) the per-processor peaks, makespan, and message
//! counts are identical to [`mf_core::parsim::run`] — the backend
//! equivalence the `backend_equiv` binary asserts over the paper's full
//! matrix set.
//!
//! Noise models are runtime features of the simulator, not of the
//! protocol; this backend rejects them ([`ExecError::Unsupported`])
//! rather than approximating.

#![warn(missing_docs)]

use mf_core::config::SolverConfig;
use mf_core::error::{RunDiagnostics, SimError};
use mf_core::mapping::StaticMapping;
use mf_core::parsim::RunResult;
use mf_core::proto::{initial_loads, Effect, Input, Msg, SchedulerCore, Violation};
use mf_core::ProcDiag;
use mf_sim::recorder::MemArea;
use mf_sim::recorder::TaskRole;
use mf_sim::{CompactEvent, MsgClass, NetworkModel, Recording, RunMetrics, Time, Trace};
use mf_symbolic::AssemblyTree;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::mpsc;

/// Why a threaded run could not be performed or failed.
#[derive(Debug)]
pub enum ExecError {
    /// The configuration asks for a simulator-only feature (duration
    /// jitter, fault perturbations).
    Unsupported(String),
    /// The run failed the same way a simulated run can fail.
    Sim(SimError),
    /// A worker's physical ledger disagreed with its core's accounting —
    /// the cross-check this backend exists to perform.
    Ledger {
        /// Offending processor.
        proc: usize,
        /// What disagreed.
        detail: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Unsupported(what) => {
                write!(f, "threaded backend does not support {what}")
            }
            ExecError::Sim(e) => write!(f, "{e}"),
            ExecError::Ledger { proc, detail } => {
                write!(f, "physical ledger mismatch on proc {proc}: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A queued delivery, ordered by `(at, seq)` — identical tie-breaking to
/// the discrete-event simulator (FIFO among simultaneous events).
struct QEntry {
    at: Time,
    seq: u64,
    item: Item,
}

enum Item {
    Msg { from: usize, to: usize, msg: Msg },
    Timer { proc: usize, key: u64 },
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Commands the coordinator sends to a worker.
enum Cmd {
    /// Feed one input into the core at virtual time `now`.
    Input { now: Time, input: Input },
    /// Report the cheapest deferred ready task (stall-breaker support).
    CheapestDeferred,
    /// Report the final per-processor state and exit.
    Finish,
}

/// A worker's answer (the protocol is strictly one reply per command).
enum Reply {
    Effects { effects: Vec<Effect>, nodes_done: usize, violation: Option<Violation> },
    Deferred(Option<(u64, usize)>),
    Final(Box<WorkerFinal>),
}

/// Everything a worker knows at the end of the run.
struct WorkerFinal {
    diag: ProcDiag,
    metrics: RunMetrics,
    active_peak: u64,
    total_peak: u64,
    factors: u64,
    active: u64,
    underflows: u64,
    disk_busy_until: Time,
    nodes_done: usize,
    forced: u64,
    trace: Option<Trace>,
    /// Outstanding entries in the physical ledger (0 in a correct run).
    ledger_active: u64,
    /// Peak of the physical ledger (must equal `active_peak`).
    ledger_peak: u64,
    /// First Free that exceeded its outstanding allocation, if any.
    ledger_fault: Option<String>,
}

/// The per-worker physical memory ledger, re-derived purely from the
/// core's `Alloc`/`Free` effects: outstanding entries per (node, area)
/// plus the running total and peak. In a correct run it reproduces the
/// core's accounting exactly — an end-to-end check that every allocation
/// the protocol reports is matched and sized consistently.
#[derive(Default)]
struct Ledger {
    outstanding: HashMap<(usize, u8), u64>,
    active: u64,
    peak: u64,
    fault: Option<String>,
}

impl Ledger {
    fn area_key(area: MemArea) -> u8 {
        match area {
            MemArea::Front => 0,
            MemArea::Stack => 1,
        }
    }

    fn alloc(&mut self, node: usize, area: MemArea, entries: u64) {
        *self.outstanding.entry((node, Self::area_key(area))).or_insert(0) += entries;
        self.active += entries;
        self.peak = self.peak.max(self.active);
    }

    fn free(&mut self, node: usize, area: MemArea, entries: u64) {
        let slot = self.outstanding.entry((node, Self::area_key(area))).or_insert(0);
        if *slot < entries || self.active < entries {
            if self.fault.is_none() {
                self.fault = Some(format!(
                    "free of {entries} entries for node {node} ({area:?}) exceeds the {} outstanding",
                    *slot
                ));
            }
            return;
        }
        *slot -= entries;
        self.active -= entries;
    }
}

/// One worker thread: owns its scheduler core and physical ledger,
/// executes commands until told to finish.
fn worker(
    p: usize,
    tree: &AssemblyTree,
    map: &StaticMapping,
    cfg: &SolverConfig,
    load0: &[u64],
    rx: mpsc::Receiver<Cmd>,
    tx: mpsc::Sender<(usize, Reply)>,
) {
    let mut core = SchedulerCore::new(p, tree, map, cfg, load0);
    let mut ledger = Ledger::default();
    for cmd in rx {
        match cmd {
            Cmd::Input { now, input } => {
                let mut effects = Vec::new();
                for e in core.handle(now, input) {
                    match &e {
                        Effect::Alloc { node, area, entries } => {
                            ledger.alloc(*node, *area, *entries)
                        }
                        Effect::Free { node, area, entries } => ledger.free(*node, *area, *entries),
                        _ => {}
                    }
                    effects.push(e);
                }
                let reply = Reply::Effects {
                    effects,
                    nodes_done: core.nodes_done(),
                    violation: core.take_violation(),
                };
                if tx.send((p, reply)).is_err() {
                    return;
                }
            }
            Cmd::CheapestDeferred => {
                if tx.send((p, Reply::Deferred(core.cheapest_deferred()))).is_err() {
                    return;
                }
            }
            Cmd::Finish => {
                let mem = core.memory();
                let fin = WorkerFinal {
                    diag: core.proc_diag(),
                    metrics: core.metrics().clone(),
                    active_peak: mem.active_peak(),
                    total_peak: mem.total_peak(),
                    factors: mem.factors(),
                    active: mem.active(),
                    underflows: mem.underflows(),
                    disk_busy_until: core.disk_busy_until(),
                    nodes_done: core.nodes_done(),
                    forced: core.forced(),
                    trace: mem.trace().cloned(),
                    ledger_active: ledger.active,
                    ledger_peak: ledger.peak,
                    ledger_fault: ledger.fault.take(),
                };
                let _ = tx.send((p, Reply::Final(Box::new(fin))));
                return;
            }
        }
    }
}

/// The coordinator: virtual clock, conservative event queue, and the
/// transport-side effect execution (network timing, traffic metrics,
/// flight recorder).
struct Coordinator {
    now: Time,
    seq: u64,
    heap: BinaryHeap<Reverse<QEntry>>,
    delivered: u64,
    messages: u64,
    net: NetworkModel,
    nprocs: usize,
    metrics: RunMetrics,
    rec: Option<Recording>,
    /// Per-processor `(node, role)` by compute key, maintained only while
    /// recording: the coordinator synthesizes `ComputeStart` from the
    /// `StartCompute` effect and `ComputeEnd` from its timer, so the
    /// core's compute path needs no recording branch.
    work_info: Vec<Vec<(usize, TaskRole)>>,
    flops_per_tick: u64,
    nodes_done: Vec<usize>,
}

impl Coordinator {
    fn record(&mut self, build: impl FnOnce() -> CompactEvent) {
        if let Some(rec) = self.rec.as_mut() {
            rec.record(self.now, build());
        }
    }

    fn push(&mut self, at: Time, item: Item) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(QEntry { at, seq, item }));
    }

    fn send(&mut self, from: usize, to: usize, msg: Msg, bytes: u64) {
        debug_assert_ne!(from, to, "self-sends are handled inside the core");
        self.messages += 1;
        match msg.class() {
            MsgClass::Control => {
                self.metrics.control_msgs += 1;
                self.metrics.control_bytes += bytes;
            }
            MsgClass::Status => {
                self.metrics.status_msgs += 1;
                self.metrics.status_bytes += bytes;
            }
        }
        let at = self.now + self.net.transfer_time(bytes);
        self.push(at, Item::Msg { from, to, msg });
    }

    fn broadcast(&mut self, from: usize, msg: Msg, bytes: u64) {
        if self.rec.is_some() {
            if let Some((kind, value)) = msg.status_kind() {
                self.record(|| CompactEvent::status_send(from, kind, value));
            }
        }
        debug_assert!(matches!(msg.class(), MsgClass::Status), "broadcast is status-only");
        let n = self.nprocs.saturating_sub(1) as u64;
        self.messages += n;
        self.metrics.status_msgs += n;
        self.metrics.status_bytes += n * bytes;
        // Targets in ascending order with consecutive sequence numbers:
        // exactly the delivery order of the simulator's broadcast entry.
        let at = self.now + self.net.transfer_time(bytes);
        for to in 0..self.nprocs {
            if to != from {
                self.push(at, Item::Msg { from, to, msg: msg.clone() });
            }
        }
    }

    /// Performs the transport-side effects a worker's reply carried.
    fn apply_effects(&mut self, p: usize, effects: Vec<Effect>) {
        for e in effects {
            match e {
                Effect::Send { to, msg, bytes } => self.send(p, to, msg, bytes),
                Effect::Broadcast { msg, bytes } => self.broadcast(p, msg, bytes),
                Effect::StartCompute { key, node, role, flops } => {
                    if self.rec.is_some() {
                        self.record(|| CompactEvent::compute_start(p, node, role));
                        let info = &mut self.work_info[p];
                        let k = key as usize;
                        if info.len() <= k {
                            info.resize(k + 1, (0, TaskRole::Elim));
                        }
                        info[k] = (node, role);
                    }
                    let duration = (flops / self.flops_per_tick.max(1)).max(1);
                    self.metrics.procs[p].busy_ticks += duration;
                    let at = self.now + duration;
                    self.push(at, Item::Timer { proc: p, key });
                }
                Effect::Alloc { node, area, entries } => {
                    self.record(|| CompactEvent::mem_alloc(p, node, area, entries));
                }
                Effect::Free { node, area, entries } => {
                    self.record(|| CompactEvent::mem_free(p, node, area, entries));
                }
                Effect::Record(ev) => {
                    if let Some(rec) = self.rec.as_mut() {
                        rec.record(self.now, ev);
                    }
                }
            }
        }
    }
}

/// Sends one input to worker `p` and applies the transport effects of its
/// reply. Returns the violation the core flagged, if any.
fn dispatch(
    co: &mut Coordinator,
    cmds: &[mpsc::Sender<Cmd>],
    replies: &mpsc::Receiver<(usize, Reply)>,
    p: usize,
    input: Input,
) -> Result<Option<Violation>, ExecError> {
    let now = co.now;
    cmds[p].send(Cmd::Input { now, input }).map_err(|_| worker_died(p))?;
    match replies.recv() {
        Ok((q, Reply::Effects { effects, nodes_done, violation })) => {
            debug_assert_eq!(q, p);
            co.nodes_done[p] = nodes_done;
            co.apply_effects(p, effects);
            Ok(violation)
        }
        _ => Err(worker_died(p)),
    }
}

fn worker_died(p: usize) -> ExecError {
    ExecError::Ledger { proc: p, detail: "worker thread terminated unexpectedly".into() }
}

/// Collects every worker's final state (ends the worker threads).
fn collect_finals(
    cmds: &[mpsc::Sender<Cmd>],
    replies: &mpsc::Receiver<(usize, Reply)>,
    nprocs: usize,
) -> Result<Vec<WorkerFinal>, ExecError> {
    for tx in cmds {
        let _ = tx.send(Cmd::Finish);
    }
    let mut finals: Vec<Option<WorkerFinal>> = (0..nprocs).map(|_| None).collect();
    for _ in 0..nprocs {
        match replies.recv() {
            Ok((p, Reply::Final(f))) => finals[p] = Some(*f),
            Ok((p, _)) => return Err(worker_died(p)),
            Err(_) => return Err(worker_died(0)),
        }
    }
    Ok(finals.into_iter().map(|f| f.expect("every worker reported")).collect())
}

fn diagnostics(co: &Coordinator, finals: &[WorkerFinal], total_nodes: usize) -> RunDiagnostics {
    let mut metrics = co.metrics.clone();
    for f in finals {
        metrics.merge(&f.metrics);
    }
    RunDiagnostics {
        now: co.now,
        delivered_events: co.delivered,
        in_flight: co.heap.len(),
        nodes_done: finals.iter().map(|f| f.nodes_done).sum(),
        total_nodes,
        dropped_messages: 0,
        metrics: Box::new(metrics),
        procs: finals.iter().map(|f| f.diag.clone()).collect(),
    }
}

/// Runs the parallel factorization on real OS threads: one worker per
/// processor plus a coordinating event loop on the calling thread.
///
/// Produces the same [`RunResult`] as [`mf_core::parsim::run`] — under
/// the quiet model, with identical per-processor peaks, makespan, and
/// message counts. Returns [`ExecError::Unsupported`] when the
/// configuration asks for simulator-only noise models, and
/// [`ExecError::Ledger`] when a worker's physically re-derived memory
/// ledger disagrees with its core's accounting.
pub fn run_threads(
    tree: &AssemblyTree,
    map: &StaticMapping,
    cfg: &SolverConfig,
) -> Result<RunResult, ExecError> {
    if cfg.jitter.is_some() {
        return Err(ExecError::Unsupported("duration jitter (simulator-only noise)".into()));
    }
    if cfg.fault.as_ref().is_some_and(|m| !m.is_quiet()) {
        return Err(ExecError::Unsupported("fault perturbations (simulator-only noise)".into()));
    }
    let n = tree.len();
    let load0 = initial_loads(tree, map, cfg.nprocs);

    std::thread::scope(|scope| {
        let (reply_tx, replies) = mpsc::channel::<(usize, Reply)>();
        let mut cmds = Vec::with_capacity(cfg.nprocs);
        for p in 0..cfg.nprocs {
            let (tx, rx) = mpsc::channel::<Cmd>();
            cmds.push(tx);
            let reply_tx = reply_tx.clone();
            let load0 = &load0;
            scope.spawn(move || worker(p, tree, map, cfg, load0, rx, reply_tx));
        }
        drop(reply_tx);

        let mut co = Coordinator {
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            delivered: 0,
            messages: 0,
            net: cfg.network,
            nprocs: cfg.nprocs,
            metrics: RunMetrics::new(cfg.nprocs),
            rec: cfg.record_events.then(|| Recording::new(cfg.event_capacity)),
            work_info: if cfg.record_events { vec![Vec::new(); cfg.nprocs] } else { Vec::new() },
            flops_per_tick: cfg.flops_per_tick,
            nodes_done: vec![0; cfg.nprocs],
        };

        for p in 0..cfg.nprocs {
            if let Some(v) = dispatch(&mut co, &cmds, &replies, p, Input::Tick)? {
                let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
                return Err(ExecError::Sim(violation_error(v, diagnostics(&co, &finals, n))));
            }
        }
        loop {
            while let Some(Reverse(QEntry { at, item, .. })) = co.heap.pop() {
                debug_assert!(at >= co.now, "event queue must be causal");
                co.now = at;
                co.delivered += 1;
                let (p, input) = match item {
                    Item::Msg { from, to, msg } => (to, Input::Deliver { from, msg }),
                    Item::Timer { proc, key } => {
                        if co.rec.is_some() {
                            // A fired timer is a compute completion: record
                            // ComputeEnd before the worker's effects (exactly
                            // where the completion handler sits in the event
                            // order).
                            if let Some(&(node, role)) = co.work_info[proc].get(key as usize) {
                                co.record(|| CompactEvent::compute_end(proc, node, role));
                            }
                        }
                        (proc, Input::TimerFired { key })
                    }
                };
                if let Some(v) = dispatch(&mut co, &cmds, &replies, p, input)? {
                    let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
                    return Err(ExecError::Sim(violation_error(v, diagnostics(&co, &finals, n))));
                }
                if let Some(limit) = cfg.time_limit {
                    if co.now > limit {
                        let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
                        let diag = diagnostics(&co, &finals, n);
                        return Err(ExecError::Sim(SimError::TimeLimit { limit, diag }));
                    }
                }
            }
            if co.nodes_done.iter().sum::<usize>() >= n {
                break;
            }
            // Same degradation ladder as the simulator backend: force the
            // globally cheapest deferred task, or report a genuine stall.
            if cfg.capacity.is_none() {
                let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
                let diag = diagnostics(&co, &finals, n);
                return Err(ExecError::Sim(SimError::Stalled { diag }));
            }
            let mut best: Option<(u64, usize, usize)> = None;
            for (p, tx) in cmds.iter().enumerate() {
                tx.send(Cmd::CheapestDeferred).map_err(|_| worker_died(p))?;
                match replies.recv() {
                    Ok((q, Reply::Deferred(d))) => {
                        debug_assert_eq!(q, p);
                        if let Some((cost, v)) = d {
                            let cand = (cost, p, v);
                            if best.is_none_or(|b| cand < b) {
                                best = Some(cand);
                            }
                        }
                    }
                    _ => return Err(worker_died(p)),
                }
            }
            let Some((_, p, v)) = best else {
                let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
                let diag = diagnostics(&co, &finals, n);
                return Err(ExecError::Sim(SimError::Stalled { diag }));
            };
            if let Some(viol) = dispatch(&mut co, &cmds, &replies, p, Input::Force { node: v })? {
                let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
                return Err(ExecError::Sim(violation_error(viol, diagnostics(&co, &finals, n))));
            }
        }

        let finals = collect_finals(&cmds, &replies, cfg.nprocs)?;
        for (p, f) in finals.iter().enumerate() {
            if let Some(detail) = &f.ledger_fault {
                return Err(ExecError::Ledger { proc: p, detail: detail.clone() });
            }
            if f.ledger_peak != f.active_peak {
                return Err(ExecError::Ledger {
                    proc: p,
                    detail: format!(
                        "ledger peak {} != accounting peak {}",
                        f.ledger_peak, f.active_peak
                    ),
                });
            }
            if f.ledger_active != f.active {
                return Err(ExecError::Ledger {
                    proc: p,
                    detail: format!(
                        "ledger residual {} != accounting residual {}",
                        f.ledger_active, f.active
                    ),
                });
            }
        }

        let disk_end = finals.iter().map(|f| f.disk_busy_until).max().unwrap_or(0);
        let makespan = co.now.max(disk_end);
        let peaks: Vec<u64> = finals.iter().map(|f| f.active_peak).collect();
        let max_peak = peaks.iter().copied().max().unwrap_or(0);
        let avg_peak = peaks.iter().sum::<u64>() as f64 / peaks.len().max(1) as f64;
        let mut metrics = co.metrics;
        for f in &finals {
            metrics.merge(&f.metrics);
        }
        if let Some(rec) = &co.rec {
            // Finalization invariant: every payload reference of the finished
            // recording is in-bounds and non-overlapping.
            rec.debug_validate();
        }
        Ok(RunResult {
            total_peaks: finals.iter().map(|f| f.total_peak).collect(),
            factor_entries: finals.iter().map(|f| f.factors).collect(),
            max_peak,
            avg_peak,
            makespan,
            messages: co.messages,
            traces: cfg
                .record_traces
                .then(|| finals.iter().map(|f| f.trace.clone().unwrap_or_default()).collect()),
            nodes_done: finals.iter().map(|f| f.nodes_done).sum(),
            total_nodes: n,
            dropped_messages: 0,
            forced_activations: finals.iter().map(|f| f.forced).sum(),
            final_active: finals.iter().map(|f| f.active).collect(),
            underflows: finals.iter().map(|f| f.underflows).collect(),
            metrics,
            recording: co.rec,
            peaks,
        })
    })
}

fn violation_error(v: Violation, diag: RunDiagnostics) -> SimError {
    match v {
        Violation::Accounting { proc, area } => SimError::Accounting { proc, area, diag },
        Violation::Protocol { detail } => SimError::Protocol { detail, diag },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_core::config::SolverConfig;
    use mf_core::mapping::compute_mapping;
    use mf_order::OrderingKind;
    use mf_sparse::gen::grid::{grid2d, Stencil};
    use mf_symbolic::seqstack::AssemblyDiscipline;
    use mf_symbolic::AmalgamationOptions;

    fn tree_for(nx: usize) -> AssemblyTree {
        let a = grid2d(nx, nx, Stencil::Star);
        let p = OrderingKind::Metis.compute(&a);
        let mut s = mf_symbolic::analyze(&a, &p, &AmalgamationOptions::default());
        mf_symbolic::seqstack::apply_liu_order(&mut s.tree, AssemblyDiscipline::FrontThenFree);
        s.tree
    }

    #[test]
    fn threads_match_simulator_exactly() {
        let tree = tree_for(24);
        for cfg in [
            SolverConfig { type2_front_min: 24, ..SolverConfig::mumps_baseline(4) },
            SolverConfig { type2_front_min: 24, ..SolverConfig::memory_based(4) },
            SolverConfig {
                type2_front_min: 24,
                capacity: Some(1),
                ..SolverConfig::mumps_baseline(4)
            },
        ] {
            let map = compute_mapping(&tree, &cfg);
            let sim = mf_core::parsim::run(&tree, &map, &cfg).unwrap();
            let thr = run_threads(&tree, &map, &cfg).unwrap();
            assert_eq!(thr.peaks, sim.peaks);
            assert_eq!(thr.total_peaks, sim.total_peaks);
            assert_eq!(thr.makespan, sim.makespan);
            assert_eq!(thr.messages, sim.messages);
            assert_eq!(thr.nodes_done, sim.nodes_done);
            assert_eq!(thr.forced_activations, sim.forced_activations);
            assert_eq!(thr.metrics, sim.metrics);
        }
    }

    #[test]
    fn recording_matches_simulator() {
        let tree = tree_for(20);
        let cfg = SolverConfig {
            type2_front_min: 24,
            record_events: true,
            record_traces: true,
            ..SolverConfig::memory_based(4)
        };
        let map = compute_mapping(&tree, &cfg);
        let sim = mf_core::parsim::run(&tree, &map, &cfg).unwrap();
        let thr = run_threads(&tree, &map, &cfg).unwrap();
        assert_eq!(thr.recording, sim.recording, "recordings must be bit-identical");
        let (st, tt) = (sim.traces.unwrap(), thr.traces.unwrap());
        for (a, b) in st.iter().zip(&tt) {
            assert_eq!(a.max(), b.max());
        }
    }

    #[test]
    fn noise_models_are_rejected() {
        let tree = tree_for(16);
        let cfg = SolverConfig {
            type2_front_min: 24,
            jitter: Some((7, 0.1)),
            ..SolverConfig::mumps_baseline(2)
        };
        let map = compute_mapping(&tree, &cfg);
        assert!(matches!(run_threads(&tree, &map, &cfg), Err(ExecError::Unsupported(_))));
        let cfg = SolverConfig {
            type2_front_min: 24,
            fault: Some(mf_sim::FaultModel::intensity(13, 3.0)),
            ..SolverConfig::mumps_baseline(2)
        };
        assert!(matches!(run_threads(&tree, &map, &cfg), Err(ExecError::Unsupported(_))));
        // The *quiet* fault model perturbs nothing and is accepted.
        let cfg = SolverConfig {
            type2_front_min: 24,
            fault: Some(mf_sim::FaultModel::quiet(9)),
            ..SolverConfig::mumps_baseline(2)
        };
        let sim = mf_core::parsim::run(&tree, &map, &cfg).unwrap();
        let thr = run_threads(&tree, &map, &cfg).unwrap();
        assert_eq!(thr.peaks, sim.peaks);
    }

    #[test]
    fn time_limit_still_guards() {
        let tree = tree_for(16);
        let cfg = SolverConfig {
            type2_front_min: 24,
            time_limit: Some(1),
            ..SolverConfig::mumps_baseline(2)
        };
        let map = compute_mapping(&tree, &cfg);
        match run_threads(&tree, &map, &cfg) {
            Err(ExecError::Sim(SimError::TimeLimit { .. })) => {}
            other => panic!("expected TimeLimit, got {other:?}"),
        }
    }
}
